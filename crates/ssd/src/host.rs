//! The host-side DirectGraph manipulation interface (paper §VI-A).
//!
//! Before a GNN task, the host (1) fetches a list of reserved physical
//! blocks from the firmware, (2) converts the dataset to DirectGraph
//! and flushes it page-by-page into those blocks through customized
//! NVMe commands, and (3) kicks off mini-batches by shipping target
//! `(node, primary-section address)` records. The firmware enforces the
//! §VI-E security rules at each step: flush destinations must stay
//! inside the reserved blocks, embedded section addresses must stay
//! inside the DirectGraph region, and batch targets must resolve to
//! primary sections of the claimed nodes.
//!
//! [`HostAdapter`] drives the whole flow over a modeled NVMe queue pair
//! against the device's FTL and flash page store.

use std::fmt;

use beacon_graph::NodeId;
use directgraph::{DirectGraph, PageIndex, Validator};

use crate::ftl::{BlockId, Ftl, FtlError};
use crate::nvme::{NvmeCommand, QueuePair, TargetRecord};

/// Errors from the host interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The FTL rejected an operation.
    Ftl(FtlError),
    /// A flush targeted a page outside the reserved region.
    FlushOutOfBounds { ppa: u64 },
    /// Page contents embed an address outside the DirectGraph region.
    EmbeddedAddressOutOfBounds { page: u64 },
    /// A batch target failed firmware verification.
    BadTarget { node: NodeId },
    /// The device rejected a command (NVMe status != 0).
    DeviceStatus { status: u16 },
    /// The DirectGraph has not been flushed yet.
    NotFlushed,
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Ftl(e) => write!(f, "ftl: {e}"),
            HostError::FlushOutOfBounds { ppa } => {
                write!(f, "flush destination ppa {ppa} outside reserved blocks")
            }
            HostError::EmbeddedAddressOutOfBounds { page } => {
                write!(f, "page {page} embeds an out-of-region address")
            }
            HostError::BadTarget { node } => write!(f, "target {node} failed verification"),
            HostError::DeviceStatus { status } => write!(f, "device returned status {status}"),
            HostError::NotFlushed => write!(f, "DirectGraph not flushed to device"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<FtlError> for HostError {
    fn from(e: FtlError) -> Self {
        HostError::Ftl(e)
    }
}

/// NVMe status code for a security-check rejection.
const STATUS_SECURITY: u16 = 0x1C0;

/// Drives DirectGraph setup and mini-batch launch over NVMe against a
/// device model (FTL + reserved blocks + firmware checks).
///
/// # Examples
///
/// ```
/// use beacon_flash::FlashGeometry;
/// use beacon_graph::{generate, FeatureTable, NodeId};
/// use beacon_ssd::{Ftl, HostAdapter};
/// use directgraph::{build::DirectGraphBuilder, AddrLayout};
///
/// let graph = generate::uniform(50, 4, 1);
/// let feats = FeatureTable::synthetic(50, 8, 1);
/// let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
///     .build(&graph, &feats).unwrap();
///
/// let geo = FlashGeometry { blocks_per_plane: 64, ..FlashGeometry::paper_default() };
/// let ftl = Ftl::new(&geo, 0.07);
/// let mut host = HostAdapter::new(ftl, geo.pages_per_block);
/// host.setup_directgraph(&dg).unwrap();
/// let addr = dg.directory().primary_addr(NodeId::new(0)).unwrap();
/// host.start_batch(&dg, &[(NodeId::new(0), addr)]).unwrap();
/// assert_eq!(host.batches_started(), 1);
/// ```
#[derive(Debug)]
pub struct HostAdapter {
    qp: QueuePair,
    ftl: Ftl,
    pages_per_block: usize,
    reserved: Vec<BlockId>,
    flushed_pages: u64,
    batches_started: u64,
}

impl HostAdapter {
    /// Creates an adapter over a device with the given FTL.
    pub fn new(ftl: Ftl, pages_per_block: usize) -> Self {
        HostAdapter {
            qp: QueuePair::new(64),
            ftl,
            pages_per_block,
            reserved: Vec::new(),
            flushed_pages: 0,
            batches_started: 0,
        }
    }

    /// The reserved DirectGraph blocks (empty before setup).
    pub fn reserved_blocks(&self) -> &[BlockId] {
        &self.reserved
    }

    /// Pages flushed so far.
    pub fn flushed_pages(&self) -> u64 {
        self.flushed_pages
    }

    /// Mini-batches launched so far.
    pub fn batches_started(&self) -> u64 {
        self.batches_started
    }

    /// Access to the device FTL (e.g. for wear statistics).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Mutable FTL access (regular-I/O path shares the device).
    pub fn ftl_mut(&mut self) -> &mut Ftl {
        &mut self.ftl
    }

    /// Runs the full §VI-A setup: reserve blocks sized to the image,
    /// then flush every DirectGraph page with firmware-side validation.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] on reservation failure or any §VI-E
    /// security violation.
    pub fn setup_directgraph(&mut self, dg: &DirectGraph) -> Result<(), HostError> {
        let pages = dg.image().pages_written();
        let blocks_needed = pages.div_ceil(self.pages_per_block);
        self.reserve(blocks_needed as u32)?;
        // Flush-time validation of embedded addresses (§VI-E check 1):
        // run once over the image, as the firmware would per page.
        Validator::new(dg).verify_image().map_err(|e| match e {
            directgraph::ValidationError::AddressOutOfBounds { source_page, .. } => {
                HostError::EmbeddedAddressOutOfBounds {
                    page: source_page.as_u64(),
                }
            }
            _ => HostError::NotFlushed,
        })?;
        let page_indices: Vec<PageIndex> = dg.image().iter_pages().map(|(i, _)| i).collect();
        for (i, _page_idx) in page_indices.iter().enumerate() {
            let ppa = self.ppa_of_flushed_page(i as u64);
            self.flush_one(ppa)?;
        }
        // One P/E cycle per reserved block for the program pass.
        for b in self.reserved.clone() {
            self.ftl.record_reserved_pe(b)?;
        }
        self.flushed_pages = pages as u64;
        Ok(())
    }

    /// Launches a mini-batch: verifies every `(node, address)` target
    /// against the image (§VI-E check 2) and ships the records.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::BadTarget`] for the first invalid target,
    /// or [`HostError::NotFlushed`] before setup.
    pub fn start_batch(
        &mut self,
        dg: &DirectGraph,
        targets: &[(NodeId, directgraph::PhysAddr)],
    ) -> Result<(), HostError> {
        if self.flushed_pages == 0 {
            return Err(HostError::NotFlushed);
        }
        let validator = Validator::new(dg);
        for &(node, addr) in targets {
            if validator.verify_target(node, addr).is_err() {
                // The firmware rejects the whole batch command; the
                // expected non-zero status is folded into BadTarget.
                let _ = self.roundtrip(
                    NvmeCommand::StartBatch {
                        targets: targets.len() as u32,
                    },
                    false,
                );
                return Err(HostError::BadTarget { node });
            }
        }
        let records: Vec<TargetRecord> = targets
            .iter()
            .map(|&(node, addr)| TargetRecord {
                node: node.as_u32(),
                addr,
            })
            .collect();
        let _payload = TargetRecord::encode_batch(&records);
        self.roundtrip(
            NvmeCommand::StartBatch {
                targets: targets.len() as u32,
            },
            true,
        )?;
        self.batches_started += 1;
        Ok(())
    }

    /// Device PPA backing the `i`-th flushed DirectGraph page: pages
    /// fill the reserved blocks in order.
    pub fn ppa_of_flushed_page(&self, i: u64) -> u64 {
        let block = self.reserved[(i as usize) / self.pages_per_block];
        (block.index() * self.pages_per_block) as u64 + i % self.pages_per_block as u64
    }

    fn reserve(&mut self, count: u32) -> Result<(), HostError> {
        self.roundtrip(NvmeCommand::ReserveBlocks { count }, true)?;
        self.reserved = self.ftl.reserve_blocks(count as usize)?;
        Ok(())
    }

    fn flush_one(&mut self, ppa: u64) -> Result<(), HostError> {
        // §VI-E check 1a: destination must fall in a reserved block.
        let block = BlockId::new((ppa / self.pages_per_block as u64) as u32);
        if !self.ftl.is_reserved(block) {
            self.roundtrip(NvmeCommand::FlushPage { ppa }, false)?;
            return Err(HostError::FlushOutOfBounds { ppa });
        }
        self.roundtrip(NvmeCommand::FlushPage { ppa }, true)
    }

    /// Submits a command, lets the device consume it, posts and reaps
    /// the completion. `accept` selects the device's verdict.
    fn roundtrip(&mut self, cmd: NvmeCommand, accept: bool) -> Result<(), HostError> {
        let cid = self
            .qp
            .submit(cmd)
            .map_err(|_| HostError::DeviceStatus { status: 0xFFFF })?;
        let (popped, _) = self.qp.device_pop().expect("just submitted");
        debug_assert_eq!(popped, cid);
        let status = if accept { 0 } else { STATUS_SECURITY };
        self.qp
            .device_complete(cid, status)
            .map_err(|_| HostError::DeviceStatus { status: 0xFFFE })?;
        let completion = self.qp.host_reap().expect("just completed");
        if completion.status != 0 {
            return Err(HostError::DeviceStatus {
                status: completion.status,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_flash::FlashGeometry;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn build_dg(n: usize) -> DirectGraph {
        let graph = generate::uniform(n, 5, 2);
        let feats = FeatureTable::synthetic(n, 16, 2);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap()
    }

    fn small_device() -> (Ftl, usize) {
        let geo = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 16,
            page_size: 4096,
        };
        (Ftl::new(&geo, 0.1), geo.pages_per_block)
    }

    #[test]
    fn full_setup_flow() {
        let dg = build_dg(200);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        host.setup_directgraph(&dg).unwrap();
        assert_eq!(host.flushed_pages(), dg.image().pages_written() as u64);
        assert!(!host.reserved_blocks().is_empty());
        // Every reserved block took its program P/E cycle.
        assert!(host.ftl().avg_pe_reserved() >= 1.0);
    }

    #[test]
    fn batch_launch_with_valid_targets() {
        let dg = build_dg(100);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        host.setup_directgraph(&dg).unwrap();
        let targets: Vec<_> = (0..8)
            .map(|i| {
                let v = NodeId::new(i);
                (v, dg.directory().primary_addr(v).unwrap())
            })
            .collect();
        host.start_batch(&dg, &targets).unwrap();
        assert_eq!(host.batches_started(), 1);
    }

    #[test]
    fn batch_before_flush_rejected() {
        let dg = build_dg(50);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        let addr = dg.directory().primary_addr(NodeId::new(0)).unwrap();
        assert_eq!(
            host.start_batch(&dg, &[(NodeId::new(0), addr)]),
            Err(HostError::NotFlushed)
        );
    }

    #[test]
    fn mismatched_target_rejected() {
        let dg = build_dg(100);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        host.setup_directgraph(&dg).unwrap();
        // Claim node 0 at node 1's address.
        let wrong = dg.directory().primary_addr(NodeId::new(1)).unwrap();
        let err = host
            .start_batch(&dg, &[(NodeId::new(0), wrong)])
            .unwrap_err();
        assert_eq!(
            err,
            HostError::BadTarget {
                node: NodeId::new(0)
            }
        );
        assert_eq!(host.batches_started(), 0);
    }

    #[test]
    fn bogus_target_address_rejected() {
        let dg = build_dg(100);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        host.setup_directgraph(&dg).unwrap();
        let bogus = dg.layout().pack(PageIndex::new(500_000), 0);
        assert!(host.start_batch(&dg, &[(NodeId::new(0), bogus)]).is_err());
    }

    #[test]
    fn flush_ppa_mapping_stays_in_reserved_blocks() {
        let dg = build_dg(300);
        let (ftl, ppb) = small_device();
        let mut host = HostAdapter::new(ftl, ppb);
        host.setup_directgraph(&dg).unwrap();
        for i in 0..host.flushed_pages() {
            let ppa = host.ppa_of_flushed_page(i);
            let block = BlockId::new((ppa / ppb as u64) as u32);
            assert!(
                host.ftl().is_reserved(block),
                "page {i} -> {ppa} not reserved"
            );
        }
    }

    #[test]
    fn device_too_small_errors_cleanly() {
        let dg = build_dg(5_000);
        let geo = FlashGeometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 4,
            pages_per_block: 4,
            page_size: 4096,
        };
        let mut host = HostAdapter::new(Ftl::new(&geo, 0.1), 4);
        let err = host.setup_directgraph(&dg).unwrap_err();
        assert!(matches!(
            err,
            HostError::Ftl(FtlError::ReservationTooLarge { .. })
        ));
    }
}
