//! Dependency-free performance smoke test.
//!
//! Times a fixed BG-2 simulation plus two scaling sweeps with
//! `std::time::Instant` only — no bench harness, no external crates —
//! so any environment that can build the workspace can track simulator
//! performance over time:
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin perf_smoke
//! cargo run --release -p beacon-bench --bin perf_smoke -- --jobs 4 --min-speedup 1.5
//! cargo run --release -p beacon-bench --bin perf_smoke -- --build-jobs 4 --min-build-speedup 1.5
//! cargo run --release -p beacon-bench --bin perf_smoke -- --iters 5 --json perf.json
//! ```
//!
//! Four phases, reported separately so a regression can be attributed:
//!
//! 1. **workload build sweep** — synthesizing one 8k-node graph and its
//!    DirectGraph image at each power of two of build threads up to
//!    `--build-jobs`, asserting the image digest never changes.
//! 2. **cached prepare** — the same workload through [`beacongnn::WorkloadCache`]
//!    (honouring `BEACON_WORKLOAD_CACHE`); near-zero when the on-disk
//!    cache is warm.
//! 3. **single-cell execution** — repeated BG-2 runs of that workload
//!    (the engine inner loop; `--iters` controls repetitions).
//! 4. **parallel sweep** — the Fig 14 platform × dataset matrix at
//!    reduced scale, executed sequentially and then at each power of
//!    two up to `--jobs`, with the matrix (workload-build) phase timed
//!    apart from the cell-execution passes.
//!
//! Timings go to stderr. Stdout carries only deterministic content: two
//! `digest …` lines that must be byte-identical between cold- and
//! warm-cache runs (CI `cmp`s them), plus — when `--json PATH` is *not*
//! given — the JSON report. `--min-speedup X` / `--min-build-speedup X`
//! turn the sweeps into gates: the process exits non-zero if the
//! speedup at the highest job/thread count falls below `X`. Both gates
//! auto-skip (with a warning) when the host has fewer cores than that
//! count — a single-core container cannot exhibit parallel speedup, and
//! failing there would only punish the hardware.

use std::fmt::Write as _;
use std::time::Instant;

use beacon_bench as bench;
use beacongnn::{Dataset, Platform, RunCell, Workload, WorkloadCache};

/// Fixed smoke-test shape: large enough that the event calendar and
/// resource models dominate, small enough to finish in seconds.
const NODES: usize = 8_000;
const BATCH: usize = 128;
const BATCHES: usize = 2;
const SEED: u64 = 7;

/// Parallel-sweep matrix shape (8 platforms × 5 datasets = 40 cells);
/// smaller than the single-cell phase so the whole sweep stays fast.
const MATRIX_NODES: usize = 4_000;
const MATRIX_BATCH: usize = 64;

fn smoke_builder() -> beacongnn::WorkloadBuilder {
    Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(NODES)
        .batch_size(BATCH)
        .batches(BATCHES)
        .seed(SEED)
}

/// FNV-1a fold, for order-sensitive digests of result streams.
fn fnv1a_fold(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn main() {
    let mut iters = 3usize;
    let mut jobs = 4usize;
    let mut build_jobs = 4usize;
    let mut min_speedup: Option<f64> = None;
    let mut min_build_speedup: Option<f64> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = parse_arg(&mut args, "--iters"),
            "--jobs" => jobs = parse_arg(&mut args, "--jobs"),
            "--build-jobs" => build_jobs = parse_arg(&mut args, "--build-jobs"),
            "--min-speedup" => min_speedup = Some(parse_arg(&mut args, "--min-speedup")),
            "--min-build-speedup" => {
                min_build_speedup = Some(parse_arg(&mut args, "--min-build-speedup"))
            }
            "--json" => json_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: perf_smoke [--iters N] [--jobs N] \
                     [--build-jobs N] [--min-speedup X] [--min-build-speedup X] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let iters = iters.max(1);
    let jobs = jobs.max(1);
    let build_jobs = build_jobs.max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Phase 1: workload preparation (synthesis + DirectGraph build) at
    // each power of two of build threads. Every point must produce the
    // same image — `digest()` covers pages, directory, and stats.
    let mut thread_counts = vec![1usize];
    while let Some(&last) = thread_counts.last() {
        if last >= build_jobs {
            break;
        }
        thread_counts.push((last * 2).min(build_jobs));
    }
    let mut build_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut workload = None;
    let mut digest = 0u64;
    for &threads in &thread_counts {
        simkit::par::set_build_threads(threads);
        let t = Instant::now();
        let w = smoke_builder().prepare().expect("smoke workload prepares");
        let secs = t.elapsed().as_secs_f64();
        if workload.is_none() {
            digest = w.directgraph().digest();
        } else {
            assert_eq!(
                w.directgraph().digest(),
                digest,
                "workload build must be byte-identical at any thread count"
            );
        }
        let base = build_rows.first().map_or(secs, |&(_, s, _)| s);
        let speedup = if secs > 0.0 { base / secs } else { 1.0 };
        eprintln!("prepare --build-jobs {threads}: {secs:.3} s, speedup {speedup:.2}x");
        build_rows.push((threads, secs, speedup));
        workload = Some(w);
    }
    let prepare_s = build_rows.first().map_or(0.0, |&(_, s, _)| s);
    let workload = std::sync::Arc::new(workload.expect("at least one build point"));
    eprintln!("prepare: {prepare_s:.3} s single-thread ({NODES} nodes, batch {BATCH} x {BATCHES})");

    // Phase 2: the same workload through the disk-aware cache. Cold
    // runs pay one extra build plus the serialization; warm runs load
    // the image from disk and should be near-zero.
    let t = Instant::now();
    let cached = WorkloadCache::new()
        .get_or_prepare(smoke_builder())
        .expect("cached smoke workload prepares");
    let cached_prepare_s = t.elapsed().as_secs_f64();
    assert_eq!(
        cached.directgraph().digest(),
        digest,
        "cached workload must match the freshly built image"
    );
    drop(cached);
    let cache_stats = beacongnn::diskcache::stats();
    eprintln!(
        "cached prepare: {cached_prepare_s:.3} s (disk hits {}, misses {})",
        cache_stats.hits, cache_stats.misses
    );
    println!("digest workload 0x{digest:016x}");

    // Phase 3: single-cell engine execution (the hot loop).
    let cell = RunCell::new(Platform::Bg2, workload);
    // One warm-up run so allocator and page-cache effects do not skew
    // the first timed iteration.
    let warm = cell.execute();
    let mut times = Vec::with_capacity(iters);
    for i in 0..iters {
        let t = Instant::now();
        let m = cell.execute();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            m.nodes_visited, warm.nodes_visited,
            "simulation must be deterministic across timing iterations"
        );
        eprintln!("run {}/{iters}: {secs:.3} s", i + 1);
        times.push(secs);
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    eprintln!(
        "BG-2 {NODES}-node run: best {best:.3} s, mean {mean:.3} s, \
         {:.0} nodes visited, makespan {}",
        warm.nodes_visited as f64, warm.makespan
    );

    // Phase 4: parallel-scaling sweep on the Fig 14 matrix. Workload
    // build (cache population during matrix construction) is timed
    // apart from the cell-execution passes so the two phases cannot be
    // conflated when the numbers move.
    let tb = Instant::now();
    let matrix = bench::fig14_matrix(MATRIX_NODES, MATRIX_BATCH);
    let build_s = tb.elapsed().as_secs_f64();
    eprintln!(
        "matrix build: {build_s:.3} s ({} cells, {MATRIX_NODES} nodes)",
        matrix.len()
    );

    let ts = Instant::now();
    let baseline = matrix.run_sequential();
    let sequential_s = ts.elapsed().as_secs_f64();
    eprintln!("matrix sequential: {sequential_s:.3} s");
    let matrix_digest = baseline.iter().fold(FNV_OFFSET, |h, m| {
        let h = fnv1a_fold(h, &m.nodes_visited.to_le_bytes());
        let h = fnv1a_fold(h, &m.flash_reads.to_le_bytes());
        fnv1a_fold(h, &m.makespan.as_ns().to_le_bytes())
    });
    println!("digest matrix 0x{matrix_digest:016x}");

    let mut job_counts = vec![1usize];
    while let Some(&last) = job_counts.last() {
        if last >= jobs {
            break;
        }
        job_counts.push((last * 2).min(jobs));
    }
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &j in &job_counts {
        let t = Instant::now();
        let results = matrix.run_parallel(j);
        let secs = t.elapsed().as_secs_f64();
        for (a, b) in baseline.iter().zip(&results) {
            assert_eq!(
                (a.nodes_visited, a.makespan),
                (b.nodes_visited, b.makespan),
                "parallel execution must match the sequential baseline"
            );
        }
        let speedup = if secs > 0.0 { sequential_s / secs } else { 1.0 };
        eprintln!("matrix --jobs {j}: {secs:.3} s, speedup {speedup:.2}x");
        rows.push((j, secs, speedup));
    }
    let final_cache = beacongnn::diskcache::stats();

    let mut json = String::new();
    json.push('{');
    let _ = write!(json, "\"platform\": \"BG-2\", ");
    let _ = write!(
        json,
        "\"nodes\": {NODES}, \"batch\": {BATCH}, \"batches\": {BATCHES}, "
    );
    let _ = write!(json, "\"seed\": {SEED}, \"iters\": {iters}, ");
    let _ = write!(json, "\"host_cores\": {host_cores}, ");
    let _ = write!(json, "\"workload_prepare_s\": {prepare_s:.6}, ");
    let _ = write!(json, "\"workload_digest\": \"0x{digest:016x}\", ");
    let _ = write!(json, "\"build\": {{\"rows\": [");
    for (i, (t, secs, speedup)) in build_rows.iter().enumerate() {
        let comma = if i + 1 < build_rows.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"threads\": {t}, \"seconds\": {secs:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    let _ = write!(json, "], \"cached_prepare_s\": {cached_prepare_s:.6}}}, ");
    let _ = write!(
        json,
        "\"disk_cache\": {{\"hits\": {}, \"misses\": {}}}, ",
        final_cache.hits, final_cache.misses
    );
    let _ = write!(
        json,
        "\"run_best_s\": {best:.6}, \"run_mean_s\": {mean:.6}, "
    );
    let _ = write!(
        json,
        "\"runs_per_s\": {:.4}, ",
        if best > 0.0 { 1.0 / best } else { 0.0 }
    );
    let _ = write!(json, "\"nodes_visited\": {}, ", warm.nodes_visited);
    let _ = write!(json, "\"flash_reads\": {}, ", warm.flash_reads);
    let _ = write!(json, "\"makespan_ns\": {}, ", warm.makespan.as_ns());
    let _ = write!(
        json,
        "\"matrix\": {{\"cells\": {}, \"nodes\": {MATRIX_NODES}, \"batch\": {MATRIX_BATCH}, \
         \"digest\": \"0x{matrix_digest:016x}\", \
         \"workload_build_s\": {build_s:.6}, \"sequential_s\": {sequential_s:.6}, \"rows\": [",
        matrix.len()
    );
    for (i, (j, secs, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"jobs\": {j}, \"seconds\": {secs:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    json.push_str("]}}\n");

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut failed = false;
    if let Some(min) = min_build_speedup {
        let &(top_threads, _, top_speedup) = build_rows.last().expect("at least one build row");
        if host_cores < top_threads {
            eprintln!(
                "build speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {top_threads} build threads"
            );
        } else if top_speedup < min {
            eprintln!(
                "build speedup gate FAILED: {top_speedup:.2}x at {top_threads} threads \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("build speedup gate passed: {top_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_speedup {
        let &(top_jobs, _, top_speedup) = rows.last().expect("at least one sweep row");
        if host_cores < top_jobs {
            eprintln!(
                "speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {top_jobs} jobs"
            );
        } else if top_speedup < min {
            eprintln!(
                "speedup gate FAILED: {top_speedup:.2}x at --jobs {top_jobs} \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("speedup gate passed: {top_speedup:.2}x >= {min:.2}x");
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Parses the next argument as `T`, exiting with a usage error if it is
/// missing or malformed.
fn parse_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_default();
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{v}`");
        std::process::exit(2);
    })
}
