//! Dependency-free performance smoke test.
//!
//! Times a fixed BG-2 simulation with `std::time::Instant` only — no
//! bench harness, no external crates — so any environment that can
//! build the workspace can track simulator performance over time:
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin perf_smoke
//! cargo run --release -p beacon-bench --bin perf_smoke -- --iters 5 --json perf.json
//! ```
//!
//! Prints a human-readable line per phase to stderr and a single JSON
//! object to stdout (or to `--json PATH`), e.g.:
//!
//! ```json
//! {"workload_prepare_s": 0.41, "run_best_s": 0.22, "runs_per_s": 4.5, ...}
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use beacongnn::{Dataset, Platform, RunCell, Workload};

/// Fixed smoke-test shape: large enough that the event calendar and
/// resource models dominate, small enough to finish in seconds.
const NODES: usize = 8_000;
const BATCH: usize = 128;
const BATCHES: usize = 2;
const SEED: u64 = 7;

fn main() {
    let mut iters = 3usize;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                let v = args.next().unwrap_or_default();
                iters = v.parse().unwrap_or_else(|_| {
                    eprintln!("--iters expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--json" => json_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: perf_smoke [--iters N] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let iters = iters.max(1);

    let t0 = Instant::now();
    let workload = std::sync::Arc::new(
        Workload::builder()
            .dataset(Dataset::Amazon)
            .nodes(NODES)
            .batch_size(BATCH)
            .batches(BATCHES)
            .seed(SEED)
            .prepare()
            .expect("smoke workload prepares"),
    );
    let prepare_s = t0.elapsed().as_secs_f64();
    eprintln!("prepare: {prepare_s:.3} s ({NODES} nodes, batch {BATCH} x {BATCHES})");

    let cell = RunCell::new(Platform::Bg2, workload);
    // One warm-up run so allocator and page-cache effects do not skew
    // the first timed iteration.
    let warm = cell.execute();
    let mut times = Vec::with_capacity(iters);
    for i in 0..iters {
        let t = Instant::now();
        let m = cell.execute();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            m.nodes_visited, warm.nodes_visited,
            "simulation must be deterministic across timing iterations"
        );
        eprintln!("run {}/{iters}: {secs:.3} s", i + 1);
        times.push(secs);
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    eprintln!(
        "BG-2 {NODES}-node run: best {best:.3} s, mean {mean:.3} s, \
         {:.0} nodes visited, makespan {}",
        warm.nodes_visited as f64, warm.makespan
    );

    let mut json = String::new();
    json.push('{');
    let _ = write!(json, "\"platform\": \"BG-2\", ");
    let _ = write!(
        json,
        "\"nodes\": {NODES}, \"batch\": {BATCH}, \"batches\": {BATCHES}, "
    );
    let _ = write!(json, "\"seed\": {SEED}, \"iters\": {iters}, ");
    let _ = write!(json, "\"workload_prepare_s\": {prepare_s:.6}, ");
    let _ = write!(
        json,
        "\"run_best_s\": {best:.6}, \"run_mean_s\": {mean:.6}, "
    );
    let _ = write!(
        json,
        "\"runs_per_s\": {:.4}, ",
        if best > 0.0 { 1.0 / best } else { 0.0 }
    );
    let _ = write!(json, "\"nodes_visited\": {}, ", warm.nodes_visited);
    let _ = write!(json, "\"flash_reads\": {}, ", warm.flash_reads);
    let _ = write!(json, "\"makespan_ns\": {}", warm.makespan.as_ns());
    json.push_str("}\n");

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
