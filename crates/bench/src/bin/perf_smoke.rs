//! Dependency-free performance smoke test.
//!
//! Times a fixed BG-2 simulation plus two scaling sweeps with
//! `std::time::Instant` only — no bench harness, no external crates —
//! so any environment that can build the workspace can track simulator
//! performance over time:
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin perf_smoke
//! cargo run --release -p beacon-bench --bin perf_smoke -- --jobs 4 --min-speedup 1.5
//! cargo run --release -p beacon-bench --bin perf_smoke -- --build-jobs 4 --min-build-speedup 1.5
//! cargo run --release -p beacon-bench --bin perf_smoke -- --iters 5 --json perf.json
//! ```
//!
//! Nine phases, reported separately so a regression can be attributed:
//!
//! 1. **workload build sweep** — synthesizing one 8k-node graph and its
//!    DirectGraph image at each power of two of build threads up to
//!    `--build-jobs`, asserting the image digest never changes.
//! 2. **cached prepare** — the same workload through [`beacongnn::WorkloadCache`]
//!    (honouring `BEACON_WORKLOAD_CACHE`); near-zero when the on-disk
//!    cache is warm.
//! 3. **single-cell execution** — repeated BG-2 runs of that workload
//!    (the engine inner loop; `--iters` controls repetitions).
//! 4. **parallel sweep** — the Fig 14 platform × dataset matrix at
//!    reduced scale, executed sequentially and then at each power of
//!    two up to `--jobs`, with the matrix (workload-build) phase timed
//!    apart from the cell-execution passes.
//! 5. **fig18 matrix** — the Fig 18 controller-core sensitivity matrix
//!    (BG chain × core counts) run sequentially with observability
//!    *disabled*. This is the wall-clock the `--baseline-json` gate
//!    tracks: any regression here is hot-path overhead.
//! 6. **observability** — the phase-3 cell re-run with `simkit::obs`
//!    enabled: simulated results must match the unobserved run exactly,
//!    two observed runs must produce byte-identical metric reports, and
//!    the obs wall-clock cost is reported.
//! 7. **intra-run parallelism** — the phase-3 cell on the partitioned
//!    per-channel engine at 1 and `--run-threads` worker threads:
//!    metric reports must be byte-identical (thread-count invariance)
//!    and the wall-clock ratio feeds the `--min-run-speedup` gate.
//! 8. **array scale-out** — the phase-3 cell sharded over
//!    `--array-devices` simulated SSDs (bfs_grow partition, PCIe-P2P
//!    fabric): the cascade is recorded once, then the replay is timed
//!    at 1 and `--array-threads` device-lane workers. Reports must be
//!    byte-identical; the wall-clock ratio feeds the
//!    `--min-array-speedup` gate.
//! 9. **record-once / replay-many** — the phase-5 matrix re-run through
//!    a fresh [`beacongnn::ReplayCache`]: the first pass records the
//!    shared cascade once, later passes replay it warm. Every replayed
//!    registry must be byte-identical to the phase-5 full run; the
//!    full/warm-replay wall-clock ratio feeds the
//!    `--min-replay-speedup` gate. The exact-cell memo path (identical
//!    cells served by cloning) is timed alongside. (Phases 4–5 pin
//!    `ReplayCache::disabled()` so their numbers keep measuring the
//!    untouched full path.)
//!
//! Timings go to stderr. Stdout carries only deterministic content:
//! `digest …` lines that must be byte-identical between cold- and
//! warm-cache runs (CI `cmp`s them), plus — when `--json PATH` is *not*
//! given — the JSON report. `--min-speedup X` / `--min-build-speedup X`
//! turn the sweeps into gates: the process exits non-zero if the
//! speedup at the highest job/thread count falls below `X`. These gates
//! (and `--min-run-speedup X` for phase 7) auto-skip (with a warning)
//! when the host has fewer cores than that
//! count — a single-core container cannot exhibit parallel speedup, and
//! failing there would only punish the hardware. `--min-replay-speedup
//! X` gates the phase-9 full/replay ratio, soft-skipping when the full
//! pass is too fast to time reliably. `--max-ns-per-event X`
//! gates the phase-3 wall-clock per simulated event (soft-skipping if
//! the run reports zero events). `--baseline-json PATH
//! --max-regress-pct X` gates the phase-5 obs-disabled wall-clock
//! against the `fig18_matrix_s` recorded in a previous report; it
//! auto-skips when the baseline is missing or unreadable.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use beacon_bench as bench;
use beacongnn::{
    ArrayConfig, Dataset, Experiment, ParallelRunner, Partition, Platform, ReplayCache, RunCell,
    RunMatrix, SsdConfig, Workload, WorkloadCache,
};

/// Fixed smoke-test shape: large enough that the event calendar and
/// resource models dominate, small enough to finish in seconds.
const NODES: usize = 8_000;
const BATCH: usize = 128;
const BATCHES: usize = 2;
const SEED: u64 = 7;

/// Parallel-sweep matrix shape (8 platforms × 5 datasets = 40 cells);
/// smaller than the single-cell phase so the whole sweep stays fast.
const MATRIX_NODES: usize = 4_000;
const MATRIX_BATCH: usize = 64;

fn smoke_builder() -> beacongnn::WorkloadBuilder {
    Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(NODES)
        .batch_size(BATCH)
        .batches(BATCHES)
        .seed(SEED)
}

/// FNV-1a fold, for order-sensitive digests of result streams.
fn fnv1a_fold(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn main() {
    let mut iters = 3usize;
    let mut jobs = 4usize;
    let mut build_jobs = 4usize;
    let mut run_threads = 4usize;
    let mut array_devices = 8usize;
    let mut array_threads = 4usize;
    let mut min_speedup: Option<f64> = None;
    let mut min_build_speedup: Option<f64> = None;
    let mut min_run_speedup: Option<f64> = None;
    let mut min_array_speedup: Option<f64> = None;
    let mut min_replay_speedup: Option<f64> = None;
    let mut max_ns_per_event: Option<f64> = None;
    let mut json_path: Option<String> = None;
    let mut baseline_json: Option<String> = None;
    let mut max_regress_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = parse_arg(&mut args, "--iters"),
            "--jobs" => jobs = parse_arg(&mut args, "--jobs"),
            "--build-jobs" => build_jobs = parse_arg(&mut args, "--build-jobs"),
            "--run-threads" => run_threads = parse_arg(&mut args, "--run-threads"),
            "--array-devices" => array_devices = parse_arg(&mut args, "--array-devices"),
            "--array-threads" => array_threads = parse_arg(&mut args, "--array-threads"),
            "--min-speedup" => min_speedup = Some(parse_arg(&mut args, "--min-speedup")),
            "--min-build-speedup" => {
                min_build_speedup = Some(parse_arg(&mut args, "--min-build-speedup"))
            }
            "--min-run-speedup" => {
                min_run_speedup = Some(parse_arg(&mut args, "--min-run-speedup"))
            }
            "--min-array-speedup" => {
                min_array_speedup = Some(parse_arg(&mut args, "--min-array-speedup"))
            }
            "--min-replay-speedup" => {
                min_replay_speedup = Some(parse_arg(&mut args, "--min-replay-speedup"))
            }
            "--max-ns-per-event" => {
                max_ns_per_event = Some(parse_arg(&mut args, "--max-ns-per-event"))
            }
            "--json" => json_path = args.next(),
            "--baseline-json" => baseline_json = args.next(),
            "--max-regress-pct" => {
                max_regress_pct = Some(parse_arg(&mut args, "--max-regress-pct"))
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: perf_smoke [--iters N] [--jobs N] \
                     [--build-jobs N] [--run-threads N] [--array-devices N] [--array-threads N] \
                     [--min-speedup X] [--min-build-speedup X] [--min-run-speedup X] \
                     [--min-array-speedup X] [--min-replay-speedup X] [--max-ns-per-event X] \
                     [--json PATH] [--baseline-json PATH] [--max-regress-pct X]"
                );
                std::process::exit(2);
            }
        }
    }
    let iters = iters.max(1);
    let jobs = jobs.max(1);
    let build_jobs = build_jobs.max(1);
    let run_threads = run_threads.max(1);
    let array_devices = array_devices.max(1);
    let array_threads = array_threads.max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Phase 1: workload preparation (synthesis + DirectGraph build) at
    // each power of two of build threads. Every point must produce the
    // same image — `digest()` covers pages, directory, and stats.
    let mut thread_counts = vec![1usize];
    while let Some(&last) = thread_counts.last() {
        if last >= build_jobs {
            break;
        }
        thread_counts.push((last * 2).min(build_jobs));
    }
    let mut build_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut workload = None;
    let mut digest = 0u64;
    for &threads in &thread_counts {
        simkit::par::set_build_threads(threads);
        let t = Instant::now();
        let w = smoke_builder().prepare().expect("smoke workload prepares");
        let secs = t.elapsed().as_secs_f64();
        if workload.is_none() {
            digest = w.directgraph().digest();
        } else {
            assert_eq!(
                w.directgraph().digest(),
                digest,
                "workload build must be byte-identical at any thread count"
            );
        }
        let base = build_rows.first().map_or(secs, |&(_, s, _)| s);
        let speedup = if secs > 0.0 { base / secs } else { 1.0 };
        eprintln!("prepare --build-jobs {threads}: {secs:.3} s, speedup {speedup:.2}x");
        build_rows.push((threads, secs, speedup));
        workload = Some(w);
    }
    let prepare_s = build_rows.first().map_or(0.0, |&(_, s, _)| s);
    let workload = std::sync::Arc::new(workload.expect("at least one build point"));
    eprintln!("prepare: {prepare_s:.3} s single-thread ({NODES} nodes, batch {BATCH} x {BATCHES})");

    // Phase 2: the same workload through the disk-aware cache. Cold
    // runs pay one extra build plus the serialization; warm runs load
    // the image from disk and should be near-zero.
    let t = Instant::now();
    let cached = WorkloadCache::new()
        .get_or_prepare(smoke_builder())
        .expect("cached smoke workload prepares");
    let cached_prepare_s = t.elapsed().as_secs_f64();
    assert_eq!(
        cached.directgraph().digest(),
        digest,
        "cached workload must match the freshly built image"
    );
    drop(cached);
    let cache_stats = beacongnn::diskcache::stats();
    eprintln!(
        "cached prepare: {cached_prepare_s:.3} s (disk hits {}, misses {})",
        cache_stats.hits, cache_stats.misses
    );
    println!("digest workload 0x{digest:016x}");

    // Phase 3: single-cell engine execution (the hot loop).
    let cell = RunCell::new(Platform::Bg2, Arc::clone(&workload));
    // One warm-up run so allocator and page-cache effects do not skew
    // the first timed iteration.
    let warm = cell.execute();
    let mut times = Vec::with_capacity(iters);
    for i in 0..iters {
        let t = Instant::now();
        let m = cell.execute();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            m.nodes_visited, warm.nodes_visited,
            "simulation must be deterministic across timing iterations"
        );
        eprintln!("run {}/{iters}: {secs:.3} s", i + 1);
        times.push(secs);
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    // Wall-clock cost per simulated event — the per-event figure the
    // hot-path budget tracks. Zero events (impossible for a healthy
    // run, but kept non-fatal) reports as 0 and soft-skips the gate.
    let events = warm.pools.events_processed;
    let ns_per_event = if events > 0 && best.is_finite() {
        best * 1e9 / events as f64
    } else {
        0.0
    };
    eprintln!(
        "BG-2 {NODES}-node run: best {best:.3} s, mean {mean:.3} s, \
         {:.0} nodes visited, makespan {}, {events} events ({ns_per_event:.0} ns/event)",
        warm.nodes_visited as f64, warm.makespan
    );
    eprintln!(
        "calendar occupancy: wheel high-water {}, far high-water {}",
        warm.pools.calendar_wheel_high_water, warm.pools.calendar_far_high_water
    );

    // Phase 4: parallel-scaling sweep on the Fig 14 matrix. Workload
    // build (cache population during matrix construction) is timed
    // apart from the cell-execution passes so the two phases cannot be
    // conflated when the numbers move.
    let tb = Instant::now();
    let matrix = bench::fig14_matrix(MATRIX_NODES, MATRIX_BATCH);
    let build_s = tb.elapsed().as_secs_f64();
    eprintln!(
        "matrix build: {build_s:.3} s ({} cells, {MATRIX_NODES} nodes)",
        matrix.len()
    );

    // Phases 4–5 pin the disabled replay cache: their wall-clocks are
    // hot-path numbers (the `--baseline-json` gate tracks phase 5), so
    // they must keep timing full execution even though the default
    // entry points now record/replay shared cascades. Phase 9 measures
    // the replay delta explicitly.
    let no_replay = ReplayCache::disabled();
    let ts = Instant::now();
    let baseline = matrix.run_sequential_with(&no_replay);
    let sequential_s = ts.elapsed().as_secs_f64();
    eprintln!("matrix sequential: {sequential_s:.3} s");
    let matrix_digest = baseline.iter().fold(FNV_OFFSET, |h, m| {
        let h = fnv1a_fold(h, &m.nodes_visited.to_le_bytes());
        let h = fnv1a_fold(h, &m.flash_reads.to_le_bytes());
        fnv1a_fold(h, &m.makespan.as_ns().to_le_bytes())
    });
    println!("digest matrix 0x{matrix_digest:016x}");

    let mut job_counts = vec![1usize];
    while let Some(&last) = job_counts.last() {
        if last >= jobs {
            break;
        }
        job_counts.push((last * 2).min(jobs));
    }
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &j in &job_counts {
        let t = Instant::now();
        let results = ParallelRunner::new(j).run_with(&matrix, &no_replay);
        let secs = t.elapsed().as_secs_f64();
        for (a, b) in baseline.iter().zip(&results) {
            assert_eq!(
                (a.nodes_visited, a.makespan),
                (b.nodes_visited, b.makespan),
                "parallel execution must match the sequential baseline"
            );
        }
        let speedup = if secs > 0.0 { sequential_s / secs } else { 1.0 };
        eprintln!("matrix --jobs {j}: {secs:.3} s, speedup {speedup:.2}x");
        rows.push((j, secs, speedup));
    }
    let final_cache = beacongnn::diskcache::stats();

    // Phase 5: the Fig 18 controller-core sensitivity matrix (BG chain
    // × core counts) run sequentially with observability disabled. The
    // `--baseline-json` gate below compares this wall-clock against a
    // previous report, so the obs layer's disabled path stays within
    // noise of the pre-obs hot path.
    let w18 = bench::workload(Dataset::Amazon, MATRIX_NODES, MATRIX_BATCH);
    let mut fig18_matrix = RunMatrix::new();
    for &cores in &[1usize, 2, 4, 8] {
        let ssd = SsdConfig::paper_default().with_cores(cores);
        for p in Platform::BG_CHAIN {
            fig18_matrix.push(RunCell::new(p, Arc::clone(&w18)).ssd(ssd));
        }
    }
    let t = Instant::now();
    let fig18_results = fig18_matrix.run_sequential_with(&no_replay);
    let fig18_matrix_s = t.elapsed().as_secs_f64();
    let fig18_digest = fig18_results.iter().fold(FNV_OFFSET, |h, m| {
        let h = fnv1a_fold(h, &m.nodes_visited.to_le_bytes());
        let h = fnv1a_fold(h, &m.flash_reads.to_le_bytes());
        fnv1a_fold(h, &m.makespan.as_ns().to_le_bytes())
    });
    eprintln!(
        "fig18 matrix ({} cells, obs disabled): {fig18_matrix_s:.3} s",
        fig18_matrix.len()
    );
    println!("digest fig18 0x{fig18_digest:016x}");

    // Phase 6: observability determinism + cost. The observed run must
    // reproduce the unobserved phase-3 results exactly, two observed
    // runs must render byte-identical metric reports, and the observed
    // wall-clock is reported next to the unobserved best.
    let exp = Experiment::new(&workload);
    let mut obs_times = Vec::with_capacity(iters);
    let mut observed = None;
    for _ in 0..iters {
        let t = Instant::now();
        let m = exp.run_observed(Platform::Bg2, 1 << 20);
        obs_times.push(t.elapsed().as_secs_f64());
        observed = Some(m);
    }
    let observed = observed.expect("at least one observed run");
    assert_eq!(
        (
            observed.nodes_visited,
            observed.flash_reads,
            observed.makespan
        ),
        (warm.nodes_visited, warm.flash_reads, warm.makespan),
        "observability must not change simulated results"
    );
    let report_a = observed.metrics_registry().to_json_string();
    let report_b = exp
        .run_observed(Platform::Bg2, 1 << 20)
        .metrics_registry()
        .to_json_string();
    assert_eq!(
        report_a, report_b,
        "metric reports must be byte-identical across identical runs"
    );
    let obs_best = obs_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let obs_overhead_pct = if best > 0.0 {
        (obs_best / best - 1.0) * 100.0
    } else {
        0.0
    };
    let report_digest = fnv1a_fold(FNV_OFFSET, report_a.as_bytes());
    eprintln!(
        "observed run: best {obs_best:.3} s ({obs_overhead_pct:+.1}% vs unobserved best), \
         {} spans, report {} bytes",
        observed.spans.len(),
        report_a.len()
    );
    println!("digest metrics 0x{report_digest:016x}");

    // Phase 7: intra-run parallelism. The same BG-2 cell on the
    // partitioned per-channel engine, serial round protocol vs
    // `--run-threads` workers. Results must be byte-identical (the
    // partitioned engine's own thread-invariance contract); the
    // wall-clock ratio is the single-run scaling number the
    // `--min-run-speedup` gate tracks.
    let mut part_t1 = Vec::with_capacity(iters);
    let mut part_tn = Vec::with_capacity(iters);
    let mut part_serial = None;
    let mut part_parallel = None;
    for _ in 0..iters {
        let t = Instant::now();
        let m = exp.run_partitioned(Platform::Bg2, 1);
        part_t1.push(t.elapsed().as_secs_f64());
        part_serial = Some(m);
        let t = Instant::now();
        let m = exp.run_partitioned(Platform::Bg2, run_threads);
        part_tn.push(t.elapsed().as_secs_f64());
        part_parallel = Some(m);
    }
    let part_serial = part_serial.expect("at least one partitioned run");
    let part_parallel = part_parallel.expect("at least one partitioned run");
    let part_report = part_serial.metrics_registry().to_json_string();
    assert_eq!(
        part_report,
        part_parallel.metrics_registry().to_json_string(),
        "partitioned engine must be byte-identical at any thread count"
    );
    let part_t1_best = part_t1.iter().cloned().fold(f64::INFINITY, f64::min);
    let part_tn_best = part_tn.iter().cloned().fold(f64::INFINITY, f64::min);
    let run_speedup = if part_tn_best > 0.0 {
        part_t1_best / part_tn_best
    } else {
        1.0
    };
    let part_digest = fnv1a_fold(FNV_OFFSET, part_report.as_bytes());
    eprintln!(
        "partitioned run: 1 thread best {part_t1_best:.3} s, {run_threads} threads best \
         {part_tn_best:.3} s, speedup {run_speedup:.2}x, makespan {}",
        part_serial.makespan
    );
    println!("digest partition 0x{part_digest:016x}");

    // Phase 8: array scale-out. The phase-3 cell sharded over
    // `--array-devices` simulated SSDs behind the partition-aware host
    // router. The cascade records once (serial, timed apart); only the
    // device-lane replay is timed at 1 vs `--array-threads` workers —
    // that replay is the parallel section the `--min-array-speedup`
    // gate tracks. Reports must be byte-identical at both counts.
    let array_cfg = ArrayConfig::pcie_p2p(array_devices);
    let array_part = Partition::bfs_grow(workload.graph(), array_devices as u32);
    let t = Instant::now();
    let cascade = exp
        .array_engine(Platform::Bg2, array_cfg)
        .record(workload.batches());
    let array_record_s = t.elapsed().as_secs_f64();
    let mut array_t1 = Vec::with_capacity(iters);
    let mut array_tn = Vec::with_capacity(iters);
    let mut array_serial = None;
    let mut array_parallel = None;
    for _ in 0..iters {
        let t = Instant::now();
        let m = exp
            .array_engine(Platform::Bg2, array_cfg)
            .threads(1)
            .run_recorded(&cascade, &array_part);
        array_t1.push(t.elapsed().as_secs_f64());
        array_serial = Some(m);
        let t = Instant::now();
        let m = exp
            .array_engine(Platform::Bg2, array_cfg)
            .threads(array_threads)
            .run_recorded(&cascade, &array_part);
        array_tn.push(t.elapsed().as_secs_f64());
        array_parallel = Some(m);
    }
    let array_serial = array_serial.expect("at least one array run");
    let array_parallel = array_parallel.expect("at least one array run");
    let array_report = array_serial.metrics_registry().to_json_string();
    assert_eq!(
        array_report,
        array_parallel.metrics_registry().to_json_string(),
        "array replay must be byte-identical at any thread count"
    );
    let array_t1_best = array_t1.iter().cloned().fold(f64::INFINITY, f64::min);
    let array_tn_best = array_tn.iter().cloned().fold(f64::INFINITY, f64::min);
    let array_speedup = if array_tn_best > 0.0 {
        array_t1_best / array_tn_best
    } else {
        1.0
    };
    let array_events: u64 = array_serial
        .per_device
        .iter()
        .map(|d| d.events_processed)
        .sum();
    let array_ns_per_event = if array_events > 0 && array_t1_best.is_finite() {
        array_t1_best * 1e9 / array_events as f64
    } else {
        0.0
    };
    let array_digest = fnv1a_fold(FNV_OFFSET, array_report.as_bytes());
    eprintln!(
        "array replay ({array_devices} devices): record {array_record_s:.3} s, 1 thread best \
         {array_t1_best:.3} s, {array_threads} threads best {array_tn_best:.3} s, speedup \
         {array_speedup:.2}x, {array_events} events ({array_ns_per_event:.0} ns/event), \
         efficiency {:.3}, makespan {}",
        array_serial.efficiency(),
        array_serial.metrics.makespan
    );
    println!("digest array 0x{array_digest:016x}");

    // Phase 9: record-once / replay-many. The phase-5 matrix (16 cells,
    // one shared workload ⇒ one replay key) re-run through a fresh
    // in-memory ReplayCache. The cold pass pays the single canonical
    // recording; warm passes replay every cell. Every replayed registry
    // must be byte-identical to the phase-5 full run — the invariant
    // that makes replay a pure performance decision — and the
    // full/warm-replay ratio feeds the `--min-replay-speedup` gate.
    let replay_cache = ReplayCache::in_memory().without_memo();
    let t = Instant::now();
    let replay_cold = fig18_matrix.run_sequential_with(&replay_cache);
    let replay_cold_s = t.elapsed().as_secs_f64();
    let mut replay_times = Vec::with_capacity(iters);
    let mut replay_warm = replay_cold;
    for _ in 0..iters {
        let t = Instant::now();
        replay_warm = fig18_matrix.run_sequential_with(&replay_cache);
        replay_times.push(t.elapsed().as_secs_f64());
    }
    for (full, replayed) in fig18_results.iter().zip(&replay_warm) {
        assert_eq!(
            full.metrics_registry().to_json_string(),
            replayed.metrics_registry().to_json_string(),
            "replayed registry must be byte-identical to the full run"
        );
    }
    let replay_stats = replay_cache.stats();
    assert_eq!(replay_stats.records, 1, "one shared key records once");
    assert_eq!(replay_stats.fallbacks, 0, "all smoke cells are replayable");
    let replay_warm_best = replay_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let replay_speedup = if replay_warm_best > 0.0 {
        fig18_matrix_s / replay_warm_best
    } else {
        1.0
    };
    // The exact-cell memo path: re-running the *same* matrix through a
    // memoizing cache serves every cell by cloning its first result —
    // the cross-figure deduplication the experiments suite leans on.
    let memo_cache = ReplayCache::in_memory();
    let memo_seed = fig18_matrix.run_sequential_with(&memo_cache);
    let mut memo_times = Vec::with_capacity(iters);
    let mut memo_warm = memo_seed;
    for _ in 0..iters {
        let t = Instant::now();
        memo_warm = fig18_matrix.run_sequential_with(&memo_cache);
        memo_times.push(t.elapsed().as_secs_f64());
    }
    for (full, memoed) in fig18_results.iter().zip(&memo_warm) {
        assert_eq!(
            full.metrics_registry().to_json_string(),
            memoed.metrics_registry().to_json_string(),
            "memoized registry must be byte-identical to the full run"
        );
    }
    assert_eq!(
        memo_cache.stats().memo_hits,
        (fig18_matrix.len() * iters) as u64,
        "warm passes must be served entirely from the memo"
    );
    let memo_warm_best = memo_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let memo_speedup = if memo_warm_best > 0.0 {
        fig18_matrix_s / memo_warm_best
    } else {
        1.0
    };
    let replay_digest = replay_warm.iter().fold(FNV_OFFSET, |h, m| {
        fnv1a_fold(h, m.metrics_registry().to_json_string().as_bytes())
    });
    eprintln!(
        "replay matrix ({} cells): full {fig18_matrix_s:.3} s, cold (record+replay) \
         {replay_cold_s:.3} s, warm best {replay_warm_best:.3} s, speedup {replay_speedup:.2}x, \
         {} records, {} hits; memo warm best {memo_warm_best:.3} s ({memo_speedup:.1}x)",
        fig18_matrix.len(),
        replay_stats.records,
        replay_stats.hits
    );
    println!("digest replay 0x{replay_digest:016x}");

    let mut json = String::new();
    json.push('{');
    let _ = write!(json, "\"platform\": \"BG-2\", ");
    let _ = write!(
        json,
        "\"nodes\": {NODES}, \"batch\": {BATCH}, \"batches\": {BATCHES}, "
    );
    let _ = write!(json, "\"seed\": {SEED}, \"iters\": {iters}, ");
    let _ = write!(json, "\"host_cores\": {host_cores}, ");
    let _ = write!(json, "\"workload_prepare_s\": {prepare_s:.6}, ");
    let _ = write!(json, "\"workload_digest\": \"0x{digest:016x}\", ");
    let _ = write!(json, "\"build\": {{\"rows\": [");
    for (i, (t, secs, speedup)) in build_rows.iter().enumerate() {
        let comma = if i + 1 < build_rows.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"threads\": {t}, \"seconds\": {secs:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    let _ = write!(json, "], \"cached_prepare_s\": {cached_prepare_s:.6}}}, ");
    let _ = write!(
        json,
        "\"disk_cache\": {{\"hits\": {}, \"misses\": {}}}, ",
        final_cache.hits, final_cache.misses
    );
    let _ = write!(
        json,
        "\"run_best_s\": {best:.6}, \"run_mean_s\": {mean:.6}, "
    );
    let _ = write!(
        json,
        "\"runs_per_s\": {:.4}, ",
        if best > 0.0 { 1.0 / best } else { 0.0 }
    );
    let _ = write!(
        json,
        "\"events_processed\": {events}, \"ns_per_event\": {ns_per_event:.2}, "
    );
    let _ = write!(
        json,
        "\"calendar_wheel_high_water\": {}, \"calendar_far_high_water\": {}, ",
        warm.pools.calendar_wheel_high_water, warm.pools.calendar_far_high_water
    );
    let _ = write!(json, "\"nodes_visited\": {}, ", warm.nodes_visited);
    let _ = write!(json, "\"flash_reads\": {}, ", warm.flash_reads);
    let _ = write!(json, "\"makespan_ns\": {}, ", warm.makespan.as_ns());
    let _ = write!(
        json,
        "\"matrix\": {{\"cells\": {}, \"nodes\": {MATRIX_NODES}, \"batch\": {MATRIX_BATCH}, \
         \"digest\": \"0x{matrix_digest:016x}\", \
         \"workload_build_s\": {build_s:.6}, \"sequential_s\": {sequential_s:.6}, \"rows\": [",
        matrix.len()
    );
    for (i, (j, secs, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"jobs\": {j}, \"seconds\": {secs:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    json.push_str("]}, ");
    let _ = write!(
        json,
        "\"fig18_matrix_s\": {fig18_matrix_s:.6}, \
         \"fig18_digest\": \"0x{fig18_digest:016x}\", "
    );
    let _ = write!(
        json,
        "\"obs\": {{\"run_best_s\": {obs_best:.6}, \"overhead_pct\": {obs_overhead_pct:.2}, \
         \"spans\": {}, \"report_bytes\": {}, \"report_digest\": \"0x{report_digest:016x}\"}}, ",
        observed.spans.len(),
        report_a.len()
    );
    let _ = write!(
        json,
        "\"partition\": {{\"threads\": {run_threads}, \"t1_best_s\": {part_t1_best:.6}, \
         \"tn_best_s\": {part_tn_best:.6}, \"speedup\": {run_speedup:.4}, \
         \"digest\": \"0x{part_digest:016x}\"}}, "
    );
    let _ = write!(
        json,
        "\"array\": {{\"devices\": {array_devices}, \"threads\": {array_threads}, \
         \"record_s\": {array_record_s:.6}, \"t1_best_s\": {array_t1_best:.6}, \
         \"tn_best_s\": {array_tn_best:.6}, \"speedup\": {array_speedup:.4}, \
         \"events_processed\": {array_events}, \"ns_per_event\": {array_ns_per_event:.2}, \
         \"efficiency\": {:.6}, \"digest\": \"0x{array_digest:016x}\"}}, ",
        array_serial.efficiency()
    );
    let _ = write!(
        json,
        "\"replay\": {{\"cells\": {}, \"full_s\": {fig18_matrix_s:.6}, \
         \"cold_s\": {replay_cold_s:.6}, \"warm_best_s\": {replay_warm_best:.6}, \
         \"speedup\": {replay_speedup:.4}, \"records\": {}, \"hits\": {}, \
         \"memo_warm_best_s\": {memo_warm_best:.6}, \"memo_speedup\": {memo_speedup:.4}, \
         \"digest\": \"0x{replay_digest:016x}\"}}",
        fig18_matrix.len(),
        replay_stats.records,
        replay_stats.hits
    );
    json.push_str("}\n");

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut failed = false;
    if let Some(min) = min_build_speedup {
        let &(top_threads, _, top_speedup) = build_rows.last().expect("at least one build row");
        if host_cores < top_threads {
            eprintln!(
                "build speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {top_threads} build threads"
            );
        } else if top_speedup < min {
            eprintln!(
                "build speedup gate FAILED: {top_speedup:.2}x at {top_threads} threads \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("build speedup gate passed: {top_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_speedup {
        let &(top_jobs, _, top_speedup) = rows.last().expect("at least one sweep row");
        if host_cores < top_jobs {
            eprintln!(
                "speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {top_jobs} jobs"
            );
        } else if top_speedup < min {
            eprintln!(
                "speedup gate FAILED: {top_speedup:.2}x at --jobs {top_jobs} \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("speedup gate passed: {top_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_run_speedup {
        if host_cores < run_threads {
            eprintln!(
                "run speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {run_threads} run threads"
            );
        } else if run_speedup < min {
            eprintln!(
                "run speedup gate FAILED: {run_speedup:.2}x at --run-threads {run_threads} \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("run speedup gate passed: {run_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_array_speedup {
        if host_cores < array_threads {
            eprintln!(
                "array speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {array_threads} array threads"
            );
        } else if array_speedup < min {
            eprintln!(
                "array speedup gate FAILED: {array_speedup:.2}x at --array-threads \
                 {array_threads} (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("array speedup gate passed: {array_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_replay_speedup {
        // No core-count skip here — replay saves work, it does not
        // parallelize it — but a full pass too fast to time reliably
        // makes the ratio pure noise, so soft-skip like the ns/event
        // gate does on zero events.
        if fig18_matrix_s < 0.05 {
            eprintln!(
                "replay speedup gate skipped: full pass {fig18_matrix_s:.3} s is too fast \
                 to time reliably"
            );
        } else if replay_speedup < min {
            eprintln!(
                "replay speedup gate FAILED: {replay_speedup:.2}x warm replay \
                 (required >= {min:.2}x)"
            );
            failed = true;
        } else {
            eprintln!("replay speedup gate passed: {replay_speedup:.2}x >= {min:.2}x");
        }
    }
    if let Some(max) = max_ns_per_event {
        if events == 0 {
            eprintln!("ns/event gate skipped: run reported zero events processed");
        } else if ns_per_event > max {
            eprintln!("ns/event gate FAILED: {ns_per_event:.0} ns/event (allowed <= {max:.0})");
            failed = true;
        } else {
            eprintln!("ns/event gate passed: {ns_per_event:.0} ns/event <= {max:.0}");
        }
    }
    if let Some(path) = baseline_json {
        let max_pct = max_regress_pct.unwrap_or(2.0);
        match std::fs::read_to_string(&path) {
            Err(e) => {
                eprintln!("fig18 regression gate skipped: cannot read {path}: {e}");
            }
            Ok(text) => match scan_json_f64(&text, "\"fig18_matrix_s\": ") {
                None => eprintln!(
                    "fig18 regression gate skipped: no fig18_matrix_s in {path} \
                     (baseline predates the obs layer?)"
                ),
                Some(base) if base <= 0.0 => {
                    eprintln!("fig18 regression gate skipped: baseline {base} s is not positive");
                }
                Some(base) => {
                    let pct = (fig18_matrix_s / base - 1.0) * 100.0;
                    if pct > max_pct {
                        eprintln!(
                            "fig18 regression gate FAILED: {fig18_matrix_s:.3} s vs baseline \
                             {base:.3} s ({pct:+.1}%, allowed +{max_pct:.1}%)"
                        );
                        failed = true;
                    } else {
                        eprintln!(
                            "fig18 regression gate passed: {fig18_matrix_s:.3} s vs baseline \
                             {base:.3} s ({pct:+.1}%, allowed +{max_pct:.1}%)"
                        );
                    }
                }
            },
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Pulls the number following `key` out of a flat JSON report without a
/// JSON parser: finds the first occurrence of the exact `"key": `
/// pattern and reads the numeric token after it.
fn scan_json_f64(text: &str, key: &str) -> Option<f64> {
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the next argument as `T`, exiting with a usage error if it is
/// missing or malformed.
fn parse_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_default();
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{v}`");
        std::process::exit(2);
    })
}
