//! Dependency-free performance smoke test.
//!
//! Times a fixed BG-2 simulation plus a parallel-scaling sweep with
//! `std::time::Instant` only — no bench harness, no external crates —
//! so any environment that can build the workspace can track simulator
//! performance over time:
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin perf_smoke
//! cargo run --release -p beacon-bench --bin perf_smoke -- --jobs 4 --min-speedup 1.5
//! cargo run --release -p beacon-bench --bin perf_smoke -- --iters 5 --json perf.json
//! ```
//!
//! Three phases, reported separately so a regression can be attributed:
//!
//! 1. **workload prepare** — synthesizing one 8k-node graph and its
//!    DirectGraph image (allocator + synthesis heavy, runs once).
//! 2. **single-cell execution** — repeated BG-2 runs of that workload
//!    (the engine inner loop; `--iters` controls repetitions).
//! 3. **parallel sweep** — the Fig 14 platform × dataset matrix at
//!    reduced scale, executed sequentially and then at each power of
//!    two up to `--jobs`, with the matrix (workload-build) phase timed
//!    apart from the cell-execution passes.
//!
//! Prints a human-readable line per phase to stderr and a single JSON
//! object to stdout (or to `--json PATH`). `--min-speedup X` turns the
//! sweep into a gate: the process exits non-zero if the speedup at the
//! highest job count falls below `X`. The gate auto-skips (with a
//! warning) when the host has fewer cores than that job count — a
//! single-core container cannot exhibit parallel speedup, and failing
//! there would only punish the hardware.

use std::fmt::Write as _;
use std::time::Instant;

use beacon_bench as bench;
use beacongnn::{Dataset, Platform, RunCell, Workload};

/// Fixed smoke-test shape: large enough that the event calendar and
/// resource models dominate, small enough to finish in seconds.
const NODES: usize = 8_000;
const BATCH: usize = 128;
const BATCHES: usize = 2;
const SEED: u64 = 7;

/// Parallel-sweep matrix shape (8 platforms × 5 datasets = 40 cells);
/// smaller than the single-cell phase so the whole sweep stays fast.
const MATRIX_NODES: usize = 4_000;
const MATRIX_BATCH: usize = 64;

fn main() {
    let mut iters = 3usize;
    let mut jobs = 4usize;
    let mut min_speedup: Option<f64> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = parse_arg(&mut args, "--iters"),
            "--jobs" => jobs = parse_arg(&mut args, "--jobs"),
            "--min-speedup" => min_speedup = Some(parse_arg(&mut args, "--min-speedup")),
            "--json" => json_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: perf_smoke [--iters N] [--jobs N] \
                     [--min-speedup X] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let iters = iters.max(1);
    let jobs = jobs.max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Phase 1: workload preparation (synthesis + DirectGraph build).
    let t0 = Instant::now();
    let workload = std::sync::Arc::new(
        Workload::builder()
            .dataset(Dataset::Amazon)
            .nodes(NODES)
            .batch_size(BATCH)
            .batches(BATCHES)
            .seed(SEED)
            .prepare()
            .expect("smoke workload prepares"),
    );
    let prepare_s = t0.elapsed().as_secs_f64();
    eprintln!("prepare: {prepare_s:.3} s ({NODES} nodes, batch {BATCH} x {BATCHES})");

    // Phase 2: single-cell engine execution (the hot loop).
    let cell = RunCell::new(Platform::Bg2, workload);
    // One warm-up run so allocator and page-cache effects do not skew
    // the first timed iteration.
    let warm = cell.execute();
    let mut times = Vec::with_capacity(iters);
    for i in 0..iters {
        let t = Instant::now();
        let m = cell.execute();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            m.nodes_visited, warm.nodes_visited,
            "simulation must be deterministic across timing iterations"
        );
        eprintln!("run {}/{iters}: {secs:.3} s", i + 1);
        times.push(secs);
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    eprintln!(
        "BG-2 {NODES}-node run: best {best:.3} s, mean {mean:.3} s, \
         {:.0} nodes visited, makespan {}",
        warm.nodes_visited as f64, warm.makespan
    );

    // Phase 3: parallel-scaling sweep on the Fig 14 matrix. Workload
    // build (cache population during matrix construction) is timed
    // apart from the cell-execution passes so the two phases cannot be
    // conflated when the numbers move.
    let tb = Instant::now();
    let matrix = bench::fig14_matrix(MATRIX_NODES, MATRIX_BATCH);
    let build_s = tb.elapsed().as_secs_f64();
    eprintln!(
        "matrix build: {build_s:.3} s ({} cells, {MATRIX_NODES} nodes)",
        matrix.len()
    );

    let ts = Instant::now();
    let baseline = matrix.run_sequential();
    let sequential_s = ts.elapsed().as_secs_f64();
    eprintln!("matrix sequential: {sequential_s:.3} s");

    let mut job_counts = vec![1usize];
    while let Some(&last) = job_counts.last() {
        if last >= jobs {
            break;
        }
        job_counts.push((last * 2).min(jobs));
    }
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &j in &job_counts {
        let t = Instant::now();
        let results = matrix.run_parallel(j);
        let secs = t.elapsed().as_secs_f64();
        for (a, b) in baseline.iter().zip(&results) {
            assert_eq!(
                (a.nodes_visited, a.makespan),
                (b.nodes_visited, b.makespan),
                "parallel execution must match the sequential baseline"
            );
        }
        let speedup = if secs > 0.0 { sequential_s / secs } else { 1.0 };
        eprintln!("matrix --jobs {j}: {secs:.3} s, speedup {speedup:.2}x");
        rows.push((j, secs, speedup));
    }

    let mut json = String::new();
    json.push('{');
    let _ = write!(json, "\"platform\": \"BG-2\", ");
    let _ = write!(
        json,
        "\"nodes\": {NODES}, \"batch\": {BATCH}, \"batches\": {BATCHES}, "
    );
    let _ = write!(json, "\"seed\": {SEED}, \"iters\": {iters}, ");
    let _ = write!(json, "\"host_cores\": {host_cores}, ");
    let _ = write!(json, "\"workload_prepare_s\": {prepare_s:.6}, ");
    let _ = write!(
        json,
        "\"run_best_s\": {best:.6}, \"run_mean_s\": {mean:.6}, "
    );
    let _ = write!(
        json,
        "\"runs_per_s\": {:.4}, ",
        if best > 0.0 { 1.0 / best } else { 0.0 }
    );
    let _ = write!(json, "\"nodes_visited\": {}, ", warm.nodes_visited);
    let _ = write!(json, "\"flash_reads\": {}, ", warm.flash_reads);
    let _ = write!(json, "\"makespan_ns\": {}, ", warm.makespan.as_ns());
    let _ = write!(
        json,
        "\"matrix\": {{\"cells\": {}, \"nodes\": {MATRIX_NODES}, \"batch\": {MATRIX_BATCH}, \
         \"workload_build_s\": {build_s:.6}, \"sequential_s\": {sequential_s:.6}, \"rows\": [",
        matrix.len()
    );
    for (i, (j, secs, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"jobs\": {j}, \"seconds\": {secs:.6}, \"speedup\": {speedup:.4}}}{comma}"
        );
    }
    json.push_str("]}}\n");

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    if let Some(min) = min_speedup {
        let &(top_jobs, _, top_speedup) = rows.last().expect("at least one sweep row");
        if host_cores < top_jobs {
            eprintln!(
                "speedup gate skipped: host has {host_cores} cores, \
                 cannot scale to {top_jobs} jobs"
            );
        } else if top_speedup < min {
            eprintln!(
                "speedup gate FAILED: {top_speedup:.2}x at --jobs {top_jobs} \
                 (required >= {min:.2}x)"
            );
            std::process::exit(1);
        } else {
            eprintln!("speedup gate passed: {top_speedup:.2}x >= {min:.2}x");
        }
    }
}

/// Parses the next argument as `T`, exiting with a usage error if it is
/// missing or malformed.
fn parse_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_default();
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{v}`");
        std::process::exit(2);
    })
}
