//! Regenerates every table and figure of the BeaconGNN evaluation.
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin experiments            # everything
//! cargo run --release -p beacon-bench --bin experiments fig14     # one figure
//! cargo run --release -p beacon-bench --bin experiments fig18 cores
//! ```

use beacon_bench as bench;
use beacon_bench::{Sweep, DEFAULT_BATCH, DEFAULT_NODES};
use beacon_platforms::Platform;
use beacongnn::report::{percent, ratio, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "fig7a" => fig7a(),
        "fig7b" => fig7b(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig15f" => fig15f(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig18" => fig18(args.get(1).map(String::as_str)),
        "fig19" => fig19(),
        "table4" => table4(),
        "trad_ssd" => trad_ssd(),
        "config" => config(),
        "query" => query(),
        "array" => array(),
        "ablation" => ablation(),
        "interference" => interference(),
        "all" => {
            fig7a();
            fig7b();
            fig14();
            fig15();
            fig15f();
            fig16();
            fig17();
            fig18(None);
            fig19();
            table4();
            trad_ssd();
            query();
            array();
            ablation();
            interference();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: fig7a fig14 fig15 fig15f \
                 fig16 fig17 fig18 [sweep] fig19 table4 trad_ssd query array ablation \
                 config all"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===\n");
}

fn fig7a() {
    header("Fig 7a — ULL die scaling under page-granular channel transfer");
    let sweep = bench::fig7a();
    let base = &sweep[0];
    let mut t = Table::new(&["dies", "throughput (pages/s)", "vs 1 die", "avg latency", "vs 1 die"]);
    for p in &sweep {
        t.row_owned(vec![
            p.dies.to_string(),
            format!("{:.0}", p.throughput),
            ratio(p.throughput / base.throughput),
            format!("{}", p.avg_latency),
            ratio(p.avg_latency.as_ns() as f64 / base.avg_latency.as_ns() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("paper: 8 dies give ~1.49x throughput at ~7.7x latency");
}

fn fig7b() {
    header("Fig 7b — motivation: hop-by-hop barrier idles flash resources");
    let rows = bench::fig7b(DEFAULT_NODES);
    let mut t = Table::new(&[
        "batch size",
        "die util (barriered)",
        "die util (out-of-order)",
        "prep inflation",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.batch_size.to_string(),
            percent(r.barriered_util),
            percent(r.out_of_order_util),
            ratio(r.prep_inflation),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: the strict hop order (Fig 5) leaves dies idle at every hop boundary;\n\
         larger batches dilute but never remove the barrier cost"
    );
}

fn fig14() {
    header("Fig 14 — normalized throughput (vs CC) across workloads");
    let rows = bench::fig14(DEFAULT_NODES, DEFAULT_BATCH);
    let mut t = Table::new(&[
        "platform", "reddit", "amazon", "movielens", "OGBN", "PPI", "geomean",
    ]);
    for p in Platform::ALL {
        let mut cells = vec![p.to_string()];
        for d in beacongnn::Dataset::ALL {
            let r = rows
                .iter()
                .find(|r| r.platform == p && r.dataset == d)
                .expect("cell exists");
            cells.push(ratio(r.normalized));
        }
        cells.push(ratio(bench::geomean_normalized(&rows, p)));
        t.row_owned(cells);
    }
    println!("{}", t.render());
    println!(
        "paper (avg): SmartSage 2.11x, GList 1.42x, BG-1 2.35x, BG-SP 5.47x over BG-1,\n\
         BG-DGSP +20% over BG-SP, BG-2 +41% over BG-DGSP, BG-2 = 21.70x CC overall"
    );
}

fn fig15() {
    header("Fig 15a-e — active flash channels/dies over time (amazon)");
    for p in [Platform::BgSp, Platform::BgDgsp, Platform::Bg2] {
        let c = bench::fig15_curves(p, DEFAULT_NODES, DEFAULT_BATCH);
        println!(
            "{:>8}: mean die util {} | mean channel util {} | slice {}",
            p.to_string(),
            percent(c.die_utilization),
            percent(c.channel_utilization),
            c.slice
        );
        let spark = |xs: &[f64], max: f64| -> String {
            const GLYPHS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
            xs.iter()
                .take(72)
                .map(|&x| GLYPHS[(x / max * 7.0).min(7.0) as usize])
                .collect()
        };
        println!("   dies  {}", spark(&c.dies, 128.0));
        println!("   chans {}", spark(&c.channels, 16.0));
    }
    println!("\npaper: BG-SP shows low-utilization valleys at hop barriers; BG-DGSP is even;\nBG-2 lifts both utilizations by ~76% over BG-SP");

    println!("\nPer-workload BG-2 utilization (Fig 15a-e's dataset comparison):\n");
    let mut t = Table::new(&["dataset", "die util", "channel util"]);
    for (d, die, chan) in bench::fig15_dataset_utilization(DEFAULT_NODES, DEFAULT_BATCH) {
        t.row_owned(vec![d.to_string(), percent(die), percent(chan)]);
    }
    println!("{}", t.render());
    println!(
        "paper: reddit/PPI die-starved (long features saturate channels); movielens/OGBN\n\
         channel-starved (short features); amazon highest on both — hence used for all\n\
         single-workload experiments"
    );
}

fn fig15f() {
    header("Fig 15f — stage latency breakdown (amazon)");
    let mut t = Table::new(&["platform", "flash", "channel", "firmware", "dram", "pcie", "host", "accel"]);
    for p in Platform::ALL {
        let m = bench::fig15f(p, DEFAULT_NODES, DEFAULT_BATCH);
        let s = m.stages;
        t.row_owned(vec![
            p.to_string(),
            format!("{}", s.flash_read),
            format!("{}", s.channel),
            format!("{}", s.firmware),
            format!("{}", s.dram),
            format!("{}", s.pcie),
            format!("{}", s.host),
            format!("{}", s.accel),
        ]);
    }
    println!("{}", t.render());
    println!("paper: CC dominated by PCIe transfer; BG-1/BG-DG by flash (page) I/O;\nhost-side delay is a minor part everywhere");
}

fn fig16() {
    header("Fig 16 — hop timeline of the data-preparation stage (amazon)");
    for p in [Platform::Bg1, Platform::BgDg, Platform::BgSp, Platform::BgDgsp, Platform::Bg2] {
        let m = bench::fig16(p, DEFAULT_NODES, 64);
        print!("{:>8}: ", p.to_string());
        for w in &m.hop_windows {
            print!("hop{} [{} - {}]  ", w.hop, w.start, w.end);
        }
        println!("overlap {}", percent(bench::hop_overlap_fraction(&m)));
    }
    println!("\npaper: BG-1/BG-SP have strictly ordered hops with gaps; BG-DG/BG-DGSP/BG-2\noverlap hops, BG-2 creating the largest overlap");
}

fn fig17() {
    header("Fig 17 — flash command latency breakdown (amazon)");
    let mut t = Table::new(&["platform", "wait_before_flash", "flash", "wait_after_flash", "mean lifetime"]);
    for p in Platform::BG_CHAIN {
        let m = bench::fig17(p, DEFAULT_NODES, DEFAULT_BATCH);
        let (w, f, a) = m.cmd_breakdown.fractions();
        t.row_owned(vec![
            p.to_string(),
            percent(w),
            percent(f),
            percent(a),
            format!("{:.1}us", m.cmd_breakdown.mean_lifetime_ns() / 1000.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: flash-proper time is a small slice everywhere; BG-SP slashes both wait\n\
         classes; DirectGraph lengthens wait_before (more ready commands); BG-2 cuts\n\
         wait time ~68% vs BG-DGSP"
    );
}

fn fig18(which: Option<&str>) {
    let sweeps: Vec<Sweep> = match which {
        None | Some("all") => Sweep::ALL.to_vec(),
        Some("batch") => vec![Sweep::BatchSize],
        Some("bandwidth") => vec![Sweep::ChannelBandwidth],
        Some("cores") => vec![Sweep::Cores],
        Some("channels") => vec![Sweep::Channels],
        Some("dies") => vec![Sweep::DiesPerChannel],
        Some("pagesize") => vec![Sweep::PageSize],
        Some(other) => {
            eprintln!("unknown sweep `{other}`");
            std::process::exit(2);
        }
    };
    for sweep in sweeps {
        header(&format!("Fig 18 — sensitivity: {}", sweep.name()));
        let rows = bench::fig18(sweep, DEFAULT_NODES);
        let points = sweep.points();
        let mut headers: Vec<String> = vec!["platform".into()];
        headers.extend(points.iter().map(|p| p.to_string()));
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&hdr_refs);
        for p in Platform::BG_CHAIN {
            // Normalize to the lowest point of this platform, like the
            // paper ("results normalized to the lowest point").
            let vals: Vec<f64> = points
                .iter()
                .map(|&pt| {
                    rows.iter()
                        .find(|r| r.platform == p && r.point == pt)
                        .map(|r| r.targets_per_sec)
                        .unwrap_or(0.0)
                })
                .collect();
            let base = vals.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
            let mut cells = vec![p.to_string()];
            cells.extend(vals.iter().map(|&v| ratio(v / base)));
            t.row_owned(cells);
        }
        println!("{}", t.render());
    }
}

fn fig19() {
    header("Fig 19 — energy breakdown and efficiency (amazon)");
    let rows = bench::fig19(DEFAULT_NODES, DEFAULT_BATCH);
    let cc_eff = rows.iter().find(|r| r.platform == Platform::Cc).unwrap().efficiency;
    let mut t = Table::new(&[
        "platform", "flash", "channel", "dram", "pcie", "cores", "host", "accel",
        "eff vs CC", "avg power",
    ]);
    for r in &rows {
        let b = &r.breakdown;
        let total = b.total().max(1e-18);
        t.row_owned(vec![
            r.platform.to_string(),
            percent(b.flash / total),
            percent(b.channel / total),
            percent(b.dram / total),
            percent(b.pcie / total),
            percent(b.cores / total),
            percent(b.host / total),
            percent(b.accel / total),
            ratio(r.efficiency / cc_eff),
            format!("{:.1} W", r.avg_power),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: CC spends 57% outside storage; BG-1/BG-DG spend 75% staging pages to\n\
         DRAM; BG-2 = 9.86x CC and 4.25x BG-1 efficiency at 13.4 W average"
    );
}

fn table4() {
    header("Table IV — DirectGraph storage inflation");
    let rows = bench::table4(DEFAULT_NODES);
    let mut t =
        Table::new(&["dataset", "paper raw (GB)", "measured inflation", "page utilization"]);
    for r in &rows {
        t.row_owned(vec![
            r.dataset.to_string(),
            format!("{:.1}", r.paper_raw_gb),
            percent(r.inflation),
            percent(r.page_utilization),
        ]);
    }
    println!("{}", t.render());
    println!("paper: reddit 2.8%, amazon 4.1%, movielens 3.5%, OGBN 32.3%, PPI 3.5%");
}

fn trad_ssd() {
    header("§VII-E — traditional 20us SSD (avg normalized throughput vs CC)");
    let rows = bench::traditional_ssd(DEFAULT_NODES, DEFAULT_BATCH);
    let mut t = Table::new(&["platform", "vs CC (20us flash)"]);
    for (p, x) in &rows {
        t.row_owned(vec![p.to_string(), ratio(*x)]);
    }
    println!("{}", t.render());
    println!("paper: BG-1 2.20x, BG-DG 2.50x, BG-SP 3.19x, BG-DGSP 4.19x, BG-2 4.19x\n(BG-2 ~ BG-DGSP: firmware suffices at 20us reads)");
}

fn query() {
    header("§VIII extension — single-target GNN query latency (amazon)");
    let rows = bench::query_latency(DEFAULT_NODES, 6);
    let cc = rows.iter().find(|r| r.platform == Platform::Cc).expect("CC row");
    let mut t = Table::new(&["platform", "mean latency", "max latency", "speedup vs CC"]);
    for r in &rows {
        t.row_owned(vec![
            r.platform.to_string(),
            format!("{}", r.mean),
            format!("{}", r.max),
            ratio(cc.mean.as_ns() as f64 / r.mean.as_ns() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("paper §VIII: one host round + no channel congestion => much lower query delay");
}

fn array() {
    header("§VIII extension — BeaconGNN storage-array scale-out (amazon, BG-2)");
    let rows = bench::array_scaling(DEFAULT_NODES, 128);
    let mut t = Table::new(&["SSDs", "throughput", "vs 1 SSD", "efficiency", "cross-partition"]);
    let single = rows[0].array_throughput;
    for r in &rows {
        t.row_owned(vec![
            r.ssds.to_string(),
            format!("{:.0}/s", r.array_throughput),
            ratio(r.array_throughput / single),
            percent(r.efficiency()),
            percent(r.cross_fraction),
        ]);
    }
    println!("{}", t.render());
    println!("paper §VIII: capacity and computation should grow linearly with SSDs over P2P");
}

fn ablation() {
    header("§VIII extension — DRAM-bottleneck mitigation ablation (BG-2, 32 channels)");
    let rows = bench::dram_ablation(DEFAULT_NODES, 256);
    let base = rows[0].1;
    let mut t = Table::new(&["configuration", "prep rate", "vs baseline"]);
    for (name, tput) in &rows {
        t.row_owned(vec![name.to_string(), format!("{tput:.0}/s"), ratio(tput / base)]);
    }
    println!("{}", t.render());
    println!(
        "paper §VIII: at high flash throughput SSD DRAM becomes the bottleneck; higher\n\
         memory bandwidth or direct flash->SRAM I/O relieves it"
    );
}

fn interference() {
    header("§VI-G extension — regular-I/O deferral during acceleration mode (BG-2)");
    let rows = bench::interference(DEFAULT_NODES);
    let mut t = Table::new(&["batch size", "batch window", "expected deferral"]);
    for r in &rows {
        t.row_owned(vec![
            r.batch_size.to_string(),
            format!("{}", r.batch_window),
            format!("{}", r.expected_deferral),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper §VI-G: regular requests arriving mid-batch defer to the batch boundary;\n\
         small batches keep the deferral window (and thus the regular-I/O latency hit)\n\
         short"
    );
}

fn config() {
    header("Table II/III — configuration inputs");
    let ssd = beacongnn::SsdConfig::paper_default();
    println!(
        "SSD: {} channels x {} dies, {} B pages, read {} / channel {} MB/s,\n\
         {} cores @ {} GHz, DRAM {:.1} GB/s, PCIe {:.1} GB/s",
        ssd.geometry.channels,
        ssd.geometry.dies_per_channel,
        ssd.geometry.page_size,
        ssd.timing.read_latency,
        ssd.timing.channel_bandwidth / 1_000_000,
        ssd.cores,
        ssd.core_hz as f64 / 1e9,
        ssd.dram_bandwidth as f64 / 1e9,
        ssd.pcie_bandwidth as f64 / 1e9,
    );
    let mut t = Table::new(&["dataset", "avg degree", "feature dim", "paper raw (GB)"]);
    for d in beacongnn::Dataset::ALL {
        let s = beacongnn::DatasetSpec::preset(d);
        t.row_owned(vec![
            d.to_string(),
            format!("{:.0}", s.avg_degree),
            s.feature_dim.to_string(),
            format!("{:.1}", s.paper_raw_gb),
        ]);
    }
    println!("\n{}", t.render());
}
