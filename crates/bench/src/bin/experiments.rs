//! Regenerates every table and figure of the BeaconGNN evaluation.
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin experiments            # everything
//! cargo run --release -p beacon-bench --bin experiments fig14     # one figure
//! cargo run --release -p beacon-bench --bin experiments fig18 cores
//! cargo run --release -p beacon-bench --bin experiments all --jobs 8
//! ```
//!
//! `--jobs N` (default: all available cores) fans independent
//! simulation cells — and, under `all`, whole figures — across worker
//! threads. Every cell's seed is fixed by its identity before execution
//! starts, so stdout is byte-identical at any job count; only the
//! wall-clock changes. The per-figure timing summary goes to stderr,
//! and `all` additionally writes a machine-readable
//! `BENCH_parallel.json` with sequential-vs-parallel wall-clock on the
//! Fig 14 matrix.

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use beacon_bench as bench;
use beacon_bench::{Sweep, DEFAULT_BATCH, DEFAULT_NODES};
use beacon_platforms::Platform;
use beacongnn::report::{percent, ratio, Table};
use beacongnn::{ParallelRunner, ReplayCache};

fn main() {
    let mut jobs = beacongnn::default_jobs();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--jobs=") => {
                let v = &other["--jobs=".len()..];
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            _ => positional.push(arg),
        }
    }
    bench::set_jobs(jobs);

    let which = positional.first().map(String::as_str).unwrap_or("all");
    match which {
        "fig7a" => print!("{}", fig7a()),
        "fig7b" => print!("{}", fig7b()),
        "fig14" => print!("{}", fig14()),
        "fig15" => print!("{}", fig15()),
        "fig15f" => print!("{}", fig15f()),
        "fig16" => print!("{}", fig16()),
        "fig17" => print!("{}", fig17()),
        "fig18" => print!("{}", fig18(positional.get(1).map(String::as_str))),
        "fig19" => print!("{}", fig19()),
        "table4" => print!("{}", table4()),
        "trad_ssd" => print!("{}", trad_ssd()),
        "config" => print!("{}", config()),
        "query" => print!("{}", query()),
        "array" => print!("{}", array()),
        "scaleout" => scaleout(&positional[1..]),
        "ablation" => print!("{}", ablation()),
        "interference" => print!("{}", interference()),
        "obs" => obs(&positional[1..]),
        "latency" => latency(&positional[1..]),
        "all" => run_all(jobs),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: fig7a fig14 fig15 fig15f \
                 fig16 fig17 fig18 [sweep] fig19 table4 trad_ssd query array scaleout \
                 ablation config obs latency all (plus --jobs N)"
            );
            std::process::exit(2);
        }
    }

    // Profile report goes to stderr only, so stdout stays byte-identical
    // whether or not the `profile` feature / BEACON_PROFILE are on.
    if simkit::profile::is_enabled() {
        eprint!("\n--- profile ---\n{}", simkit::profile::report());
    }
}

/// Runs every figure. Fig 14 doubles as the parallel-speedup
/// calibration (its matrix runs once sequentially and once under the
/// jobs setting); the remaining figures execute concurrently on a
/// figure-level worker pool and print in fixed order.
fn run_all(jobs: usize) {
    // Calibration: the Fig 14 matrix (8 platforms × 5 workloads) timed
    // both ways. The parallel pass's results also render the figure, so
    // the calibration costs one extra sequential sweep, not two. The
    // workload-build phase (cache population during matrix
    // construction) is timed apart from the execution passes.
    let tb = Instant::now();
    let matrix = bench::fig14_matrix(DEFAULT_NODES, DEFAULT_BATCH);
    let workload_build_s = tb.elapsed().as_secs_f64();
    // The calibration measures parallel speedup of *full* execution, so
    // it pins the disabled replay cache: record-once/replay-many (or the
    // exact-cell memo) would otherwise collapse the second pass and turn
    // the speedup into a cache benchmark. Results are byte-identical
    // either way; only the wall-clock semantics are at stake.
    let no_replay = ReplayCache::disabled();
    let t0 = Instant::now();
    let seq_results = matrix.run_sequential_with(&no_replay);
    let sequential_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par_results = ParallelRunner::new(jobs).run_with(&matrix, &no_replay);
    let parallel_s = t1.elapsed().as_secs_f64();
    drop(seq_results);
    let fig14_out = fig14_render(&bench::fig14_rows(&par_results));

    type FigureFn = fn() -> String;
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig7a", fig7a as FigureFn),
        ("fig7b", fig7b),
        ("fig15", fig15),
        ("fig15f", fig15f),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", || fig18(None)),
        ("fig19", fig19),
        ("table4", table4),
        ("trad_ssd", trad_ssd),
        ("query", query),
        ("array", array),
        ("scaleout", scaleout_figure),
        ("ablation", ablation),
        ("interference", interference),
        ("latency", latency_figure_text),
    ];

    // Figure-level pool: each worker steals the next un-rendered figure.
    let next = AtomicUsize::new(0);
    let mut rendered: Vec<Option<(String, f64)>> = Vec::new();
    rendered.resize_with(figures.len(), || None);
    let workers = jobs.min(figures.len()).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((_, f)) = figures.get(i) else { break };
                        let t = Instant::now();
                        let out = f();
                        mine.push((i, out, t.elapsed().as_secs_f64()));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (i, out, secs) in handle.join().expect("figure worker panicked") {
                rendered[i] = Some((out, secs));
            }
        }
    });

    // stdout: figures in canonical order (fig7a, fig7b, fig14, ...),
    // independent of schedule.
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for ((name, _), slot) in figures.iter().zip(&rendered) {
        let (_, secs) = slot.as_ref().expect("figure rendered");
        timings.push((name, *secs));
        if *name == "fig7b" {
            timings.push(("fig14", sequential_s + parallel_s));
        }
    }
    for (i, slot) in rendered.iter().enumerate() {
        print!("{}", slot.as_ref().expect("figure rendered").0);
        if figures[i].0 == "fig7b" {
            print!("{fig14_out}");
        }
    }

    // stderr: wall-clock summary (kept off stdout so output stays
    // byte-identical across job counts).
    eprintln!("\n--- timing summary ({jobs} jobs) ---");
    for (name, secs) in &timings {
        eprintln!("{name:>14}  {secs:8.3} s");
    }
    let speedup = if parallel_s > 0.0 {
        sequential_s / parallel_s
    } else {
        1.0
    };
    eprintln!(
        "fig14 matrix ({} cells): build {workload_build_s:.3} s, sequential {sequential_s:.3} s, \
         parallel {parallel_s:.3} s, speedup {speedup:.2}x",
        matrix.len()
    );

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"calibration_cells\": {},", matrix.len());
    let _ = writeln!(json, "  \"workload_build_s\": {workload_build_s:.6},");
    let _ = writeln!(json, "  \"sequential_s\": {sequential_s:.6},");
    let _ = writeln!(json, "  \"parallel_s\": {parallel_s:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    json.push_str("  \"figures\": [\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.6}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_parallel.json"),
        Err(e) => eprintln!("could not write BENCH_parallel.json: {e}"),
    }
}

fn header(out: &mut String, title: &str) {
    let _ = writeln!(out, "\n=== {title} ===\n");
}

fn fig7a() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 7a — ULL die scaling under page-granular channel transfer",
    );
    let sweep = bench::fig7a();
    let base = &sweep[0];
    let mut t = Table::new(&[
        "dies",
        "throughput (pages/s)",
        "vs 1 die",
        "avg latency",
        "vs 1 die",
    ]);
    for p in &sweep {
        t.row_owned(vec![
            p.dies.to_string(),
            format!("{:.0}", p.throughput),
            ratio(p.throughput / base.throughput),
            format!("{}", p.avg_latency),
            ratio(p.avg_latency.as_ns() as f64 / base.avg_latency.as_ns() as f64),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(out, "paper: 8 dies give ~1.49x throughput at ~7.7x latency");
    out
}

fn fig7b() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 7b — motivation: hop-by-hop barrier idles flash resources",
    );
    let rows = bench::fig7b(DEFAULT_NODES);
    let mut t = Table::new(&[
        "batch size",
        "die util (barriered)",
        "die util (out-of-order)",
        "prep inflation",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.batch_size.to_string(),
            percent(r.barriered_util),
            percent(r.out_of_order_util),
            ratio(r.prep_inflation),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: the strict hop order (Fig 5) leaves dies idle at every hop boundary;\n\
         larger batches dilute but never remove the barrier cost"
    );
    out
}

fn fig14() -> String {
    fig14_render(&bench::fig14(DEFAULT_NODES, DEFAULT_BATCH))
}

fn fig14_render(rows: &[bench::Fig14Row]) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 14 — normalized throughput (vs CC) across workloads",
    );
    let mut t = Table::new(&[
        "platform",
        "reddit",
        "amazon",
        "movielens",
        "OGBN",
        "PPI",
        "geomean",
    ]);
    for p in Platform::ALL {
        let mut cells = vec![p.to_string()];
        for d in beacongnn::Dataset::ALL {
            let r = rows
                .iter()
                .find(|r| r.platform == p && r.dataset == d)
                .expect("cell exists");
            cells.push(ratio(r.normalized));
        }
        cells.push(ratio(bench::geomean_normalized(rows, p)));
        t.row_owned(cells);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper (avg): SmartSage 2.11x, GList 1.42x, BG-1 2.35x, BG-SP 5.47x over BG-1,\n\
         BG-DGSP +20% over BG-SP, BG-2 +41% over BG-DGSP, BG-2 = 21.70x CC overall"
    );
    out
}

fn fig15() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 15a-e — active flash channels/dies over time (amazon)",
    );
    for p in [Platform::BgSp, Platform::BgDgsp, Platform::Bg2] {
        let c = bench::fig15_curves(p, DEFAULT_NODES, DEFAULT_BATCH);
        let _ = writeln!(
            out,
            "{:>8}: mean die util {} | mean channel util {} | slice {}",
            p.to_string(),
            percent(c.die_utilization),
            percent(c.channel_utilization),
            c.slice
        );
        let spark = |xs: &[f64], max: f64| -> String {
            const GLYPHS: [char; 8] = [
                '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
                '\u{2588}',
            ];
            xs.iter()
                .take(72)
                .map(|&x| GLYPHS[(x / max * 7.0).min(7.0) as usize])
                .collect()
        };
        let _ = writeln!(out, "   dies  {}", spark(&c.dies, 128.0));
        let _ = writeln!(out, "   chans {}", spark(&c.channels, 16.0));
    }
    let _ = writeln!(
        out,
        "\npaper: BG-SP shows low-utilization valleys at hop barriers; BG-DGSP is even;\n\
         BG-2 lifts both utilizations by ~76% over BG-SP"
    );

    let _ = writeln!(
        out,
        "\nPer-workload BG-2 utilization (Fig 15a-e's dataset comparison):\n"
    );
    let mut t = Table::new(&["dataset", "die util", "channel util"]);
    for (d, die, chan) in bench::fig15_dataset_utilization(DEFAULT_NODES, DEFAULT_BATCH) {
        t.row_owned(vec![d.to_string(), percent(die), percent(chan)]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: reddit/PPI die-starved (long features saturate channels); movielens/OGBN\n\
         channel-starved (short features); amazon highest on both — hence used for all\n\
         single-workload experiments"
    );
    out
}

fn fig15f() -> String {
    let mut out = String::new();
    header(&mut out, "Fig 15f — stage latency breakdown (amazon)");
    let mut t = Table::new(&[
        "platform", "flash", "channel", "firmware", "dram", "pcie", "host", "accel",
    ]);
    for p in Platform::ALL {
        let m = bench::fig15f(p, DEFAULT_NODES, DEFAULT_BATCH);
        let s = m.stages;
        t.row_owned(vec![
            p.to_string(),
            format!("{}", s.flash_read),
            format!("{}", s.channel),
            format!("{}", s.firmware),
            format!("{}", s.dram),
            format!("{}", s.pcie),
            format!("{}", s.host),
            format!("{}", s.accel),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: CC dominated by PCIe transfer; BG-1/BG-DG by flash (page) I/O;\n\
         host-side delay is a minor part everywhere"
    );
    out
}

fn fig16() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 16 — hop timeline of the data-preparation stage (amazon)",
    );
    for p in [
        Platform::Bg1,
        Platform::BgDg,
        Platform::BgSp,
        Platform::BgDgsp,
        Platform::Bg2,
    ] {
        let m = bench::fig16(p, DEFAULT_NODES, 64);
        let _ = write!(out, "{:>8}: ", p.to_string());
        for w in &m.hop_windows {
            let _ = write!(out, "hop{} [{} - {}]  ", w.hop, w.start, w.end);
        }
        let _ = writeln!(out, "overlap {}", percent(bench::hop_overlap_fraction(&m)));
    }
    let _ = writeln!(
        out,
        "\npaper: BG-1/BG-SP have strictly ordered hops with gaps; BG-DG/BG-DGSP/BG-2\n\
         overlap hops, BG-2 creating the largest overlap"
    );
    out
}

fn fig17() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 17 — flash command latency breakdown (amazon)",
    );
    let mut t = Table::new(&[
        "platform",
        "wait_before_flash",
        "flash",
        "wait_after_flash",
        "mean lifetime",
    ]);
    for p in Platform::BG_CHAIN {
        let m = bench::fig17(p, DEFAULT_NODES, DEFAULT_BATCH);
        let (w, f, a) = m.cmd_breakdown.fractions();
        t.row_owned(vec![
            p.to_string(),
            percent(w),
            percent(f),
            percent(a),
            format!("{:.1}us", m.cmd_breakdown.mean_lifetime_ns() / 1000.0),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: flash-proper time is a small slice everywhere; BG-SP slashes both wait\n\
         classes; DirectGraph lengthens wait_before (more ready commands); BG-2 cuts\n\
         wait time ~68% vs BG-DGSP"
    );
    out
}

fn fig18(which: Option<&str>) -> String {
    let sweeps: Vec<Sweep> = match which {
        None | Some("all") => Sweep::ALL.to_vec(),
        Some("batch") => vec![Sweep::BatchSize],
        Some("bandwidth") => vec![Sweep::ChannelBandwidth],
        Some("cores") => vec![Sweep::Cores],
        Some("channels") => vec![Sweep::Channels],
        Some("dies") => vec![Sweep::DiesPerChannel],
        Some("pagesize") => vec![Sweep::PageSize],
        Some(other) => {
            eprintln!("unknown sweep `{other}`");
            std::process::exit(2);
        }
    };
    let mut out = String::new();
    for sweep in sweeps {
        header(&mut out, &format!("Fig 18 — sensitivity: {}", sweep.name()));
        let rows = bench::fig18(sweep, DEFAULT_NODES);
        let points = sweep.points();
        let mut headers: Vec<String> = vec!["platform".into()];
        headers.extend(points.iter().map(|p| p.to_string()));
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&hdr_refs);
        for p in Platform::BG_CHAIN {
            // Normalize to the lowest point of this platform, like the
            // paper ("results normalized to the lowest point").
            let vals: Vec<f64> = points
                .iter()
                .map(|&pt| {
                    rows.iter()
                        .find(|r| r.platform == p && r.point == pt)
                        .map(|r| r.targets_per_sec)
                        .unwrap_or(0.0)
                })
                .collect();
            let base = vals.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
            let mut cells = vec![p.to_string()];
            cells.extend(vals.iter().map(|&v| ratio(v / base)));
            t.row_owned(cells);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

fn fig19() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Fig 19 — energy breakdown and efficiency (amazon)",
    );
    let rows = bench::fig19(DEFAULT_NODES, DEFAULT_BATCH);
    let cc_eff = rows
        .iter()
        .find(|r| r.platform == Platform::Cc)
        .unwrap()
        .efficiency;
    let mut t = Table::new(&[
        "platform",
        "flash",
        "channel",
        "dram",
        "pcie",
        "cores",
        "host",
        "accel",
        "eff vs CC",
        "avg power",
    ]);
    for r in &rows {
        let b = &r.breakdown;
        let total = b.total().max(1e-18);
        t.row_owned(vec![
            r.platform.to_string(),
            percent(b.flash / total),
            percent(b.channel / total),
            percent(b.dram / total),
            percent(b.pcie / total),
            percent(b.cores / total),
            percent(b.host / total),
            percent(b.accel / total),
            ratio(r.efficiency / cc_eff),
            format!("{:.1} W", r.avg_power),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: CC spends 57% outside storage; BG-1/BG-DG spend 75% staging pages to\n\
         DRAM; BG-2 = 9.86x CC and 4.25x BG-1 efficiency at 13.4 W average"
    );
    out
}

fn table4() -> String {
    let mut out = String::new();
    header(&mut out, "Table IV — DirectGraph storage inflation");
    let rows = bench::table4(DEFAULT_NODES);
    let mut t = Table::new(&[
        "dataset",
        "paper raw (GB)",
        "measured inflation",
        "page utilization",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.dataset.to_string(),
            format!("{:.1}", r.paper_raw_gb),
            percent(r.inflation),
            percent(r.page_utilization),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: reddit 2.8%, amazon 4.1%, movielens 3.5%, OGBN 32.3%, PPI 3.5%"
    );
    out
}

fn trad_ssd() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VII-E — traditional 20us SSD (avg normalized throughput vs CC)",
    );
    let rows = bench::traditional_ssd(DEFAULT_NODES, DEFAULT_BATCH);
    let mut t = Table::new(&["platform", "vs CC (20us flash)"]);
    for (p, x) in &rows {
        t.row_owned(vec![p.to_string(), ratio(*x)]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper: BG-1 2.20x, BG-DG 2.50x, BG-SP 3.19x, BG-DGSP 4.19x, BG-2 4.19x\n\
         (BG-2 ~ BG-DGSP: firmware suffices at 20us reads)"
    );
    out
}

fn query() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VIII extension — single-target GNN query latency (amazon)",
    );
    let rows = bench::query_latency(DEFAULT_NODES, 6);
    let cc = rows
        .iter()
        .find(|r| r.platform == Platform::Cc)
        .expect("CC row");
    let mut t = Table::new(&["platform", "mean latency", "max latency", "speedup vs CC"]);
    for r in &rows {
        t.row_owned(vec![
            r.platform.to_string(),
            format!("{}", r.mean),
            format!("{}", r.max),
            ratio(cc.mean.as_ns() as f64 / r.mean.as_ns() as f64),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper §VIII: one host round + no channel congestion => much lower query delay"
    );
    out
}

fn array() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VIII extension — BeaconGNN storage-array scale-out (amazon, BG-2)",
    );
    let rows = bench::array_scaling(DEFAULT_NODES, 128);
    let mut t = Table::new(&[
        "SSDs",
        "throughput",
        "vs 1 SSD",
        "efficiency",
        "cross-partition",
    ]);
    let single = rows[0].array_throughput;
    for r in &rows {
        t.row_owned(vec![
            r.ssds.to_string(),
            format!("{:.0}/s", r.array_throughput),
            ratio(r.array_throughput / single),
            percent(r.efficiency()),
            percent(r.cross_fraction),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper §VIII: capacity and computation should grow linearly with SSDs over P2P"
    );
    out
}

/// `scaleout [--metrics PATH]` — the simulated multi-SSD array sweep:
/// 1–16 device lanes behind the partition-aware host router, across
/// partition strategies and fabrics. `--metrics` writes the 8-device
/// bfs_grow PCIe-P2P cell's full registry (per-device + fabric-link
/// sections) as JSON.
fn scaleout(args: &[String]) {
    let mut metrics: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => {
                metrics = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--metrics expects a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown scaleout flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let report = bench::scaleout(DEFAULT_NODES, DEFAULT_BATCH, bench::jobs());
    print!("{}", scaleout_render(&report));
    if let Some(path) = metrics {
        let file = File::create(&path).unwrap_or_else(|e| {
            eprintln!("create {path}: {e}");
            std::process::exit(1);
        });
        report
            .showcase
            .metrics_registry()
            .write_json(BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("metrics written to {path}");
    }
}

fn scaleout_figure() -> String {
    scaleout_render(&bench::scaleout(
        DEFAULT_NODES,
        DEFAULT_BATCH,
        bench::jobs(),
    ))
}

fn scaleout_render(report: &bench::ScaleoutReport) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VIII scale-out — simulated multi-SSD array (amazon, BG-2)",
    );
    for (fabric, cfg) in bench::scaleout_fabrics() {
        let _ = writeln!(
            out,
            "fabric {fabric}: {:.1} GB/s per link, {} hop latency\n",
            cfg.bandwidth as f64 / 1e9,
            cfg.hop_latency
        );
        let mut t = Table::new(&[
            "devices",
            "partition",
            "throughput",
            "efficiency",
            "cut frac",
            "cross frac",
            "fabric traffic",
        ]);
        for r in report.rows.iter().filter(|r| r.fabric == fabric) {
            t.row_owned(vec![
                r.devices.to_string(),
                r.strategy.name().to_string(),
                format!("{:.0}/s", r.targets_per_sec),
                percent(r.efficiency),
                percent(r.cut_fraction),
                percent(r.cross_fraction),
                format!("{:.2} MB", r.fabric_mb),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let s = &report.showcase;
    let _ = writeln!(
        out,
        "showcase (8 devices, bfs_grow, pcie_p2p): {} rounds, {} cross-device messages,\n\
         {} command-hop edges of {} sampled, makespan {}",
        s.rounds, s.messages, s.cross_edges, s.total_edges, s.metrics.makespan
    );
    let _ = writeln!(
        out,
        "paper §VIII: capacity and computation should grow with SSDs over the P2P fabric.\n\
         On this power-law graph locality partitioning (bfs_grow) trims the cut but\n\
         concentrates the high-degree hubs on few devices, so the balanced hash/range\n\
         partitions win end-to-end; on clustered graphs the ranking flips (see the\n\
         beacon-platforms array tests). A thin fabric caps scaling outright."
    );
    out
}

fn ablation() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VIII extension — DRAM-bottleneck mitigation ablation (BG-2, 32 channels)",
    );
    let rows = bench::dram_ablation(DEFAULT_NODES, 256);
    let base = rows[0].1;
    let mut t = Table::new(&["configuration", "prep rate", "vs baseline"]);
    for (name, tput) in &rows {
        t.row_owned(vec![
            name.to_string(),
            format!("{tput:.0}/s"),
            ratio(tput / base),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper §VIII: at high flash throughput SSD DRAM becomes the bottleneck; higher\n\
         memory bandwidth or direct flash->SRAM I/O relieves it"
    );
    out
}

fn interference() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§VI-G extension — regular-I/O deferral during acceleration mode (BG-2)",
    );
    let rows = bench::interference(DEFAULT_NODES);
    let mut t = Table::new(&["batch size", "batch window", "expected deferral"]);
    for r in &rows {
        t.row_owned(vec![
            r.batch_size.to_string(),
            format!("{}", r.batch_window),
            format!("{}", r.expected_deferral),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper §VI-G: regular requests arriving mid-batch defer to the batch boundary;\n\
         small batches keep the deferral window (and thus the regular-I/O latency hit)\n\
         short"
    );
    out
}

fn config() -> String {
    let mut out = String::new();
    header(&mut out, "Table II/III — configuration inputs");
    let ssd = beacongnn::SsdConfig::paper_default();
    let _ = writeln!(
        out,
        "SSD: {} channels x {} dies, {} B pages, read {} / channel {} MB/s,\n\
         {} cores @ {} GHz, DRAM {:.1} GB/s, PCIe {:.1} GB/s",
        ssd.geometry.channels,
        ssd.geometry.dies_per_channel,
        ssd.geometry.page_size,
        ssd.timing.read_latency,
        ssd.timing.channel_bandwidth / 1_000_000,
        ssd.cores,
        ssd.core_hz as f64 / 1e9,
        ssd.dram_bandwidth as f64 / 1e9,
        ssd.pcie_bandwidth as f64 / 1e9,
    );
    let mut t = Table::new(&["dataset", "avg degree", "feature dim", "paper raw (GB)"]);
    for d in beacongnn::Dataset::ALL {
        let s = beacongnn::DatasetSpec::preset(d);
        t.row_owned(vec![
            d.to_string(),
            format!("{:.0}", s.avg_degree),
            s.feature_dim.to_string(),
            format!("{:.1}", s.paper_raw_gb),
        ]);
    }
    let _ = writeln!(out, "\n{}", t.render());
    out
}

/// `obs` — the observability smoke: one observed run (spans + metrics
/// report) plus an all-platform matrix summary executed through the
/// parallel runner at the `--jobs` setting.
///
/// All stdout and both export files derive from the simulation alone,
/// so they are byte-identical at any job count — CI diffs them across
/// `--jobs 1` and `--jobs 4`. File-write confirmations go to stderr
/// (paths differ between CI passes).
fn obs(args: &[String]) {
    let mut platform = Platform::Bg2;
    let mut dataset = beacongnn::Dataset::Amazon;
    let mut nodes = 4_000usize;
    let mut batch = 64usize;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--platform" => {
                let v = value("--platform");
                platform = Platform::ALL
                    .into_iter()
                    .find(|p| p.name().eq_ignore_ascii_case(&v))
                    .unwrap_or_else(|| {
                        eprintln!("unknown platform `{v}`");
                        std::process::exit(2);
                    });
            }
            "--dataset" => {
                let v = value("--dataset");
                dataset = beacongnn::Dataset::ALL
                    .into_iter()
                    .find(|d| d.name().eq_ignore_ascii_case(&v))
                    .unwrap_or_else(|| {
                        eprintln!("unknown dataset `{v}`");
                        std::process::exit(2);
                    });
            }
            "--nodes" => {
                let v = value("--nodes");
                nodes = v.parse().unwrap_or_else(|_| {
                    eprintln!("--nodes expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--batch" => {
                let v = value("--batch");
                batch = v.parse().unwrap_or_else(|_| {
                    eprintln!("--batch expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--trace" => trace = Some(value("--trace")),
            "--metrics" => metrics = Some(value("--metrics")),
            other => {
                eprintln!("unknown obs flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    let (m, reg) = bench::obs_report(platform, dataset, nodes, batch);

    let mut out = String::new();
    header(
        &mut out,
        "observability smoke — spans, metrics report, matrix summary",
    );
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["platform".into(), m.platform.to_string()]);
    t.row_owned(vec!["dataset".into(), dataset.to_string()]);
    t.row_owned(vec!["targets".into(), m.targets.to_string()]);
    t.row_owned(vec!["makespan".into(), format!("{}", m.makespan)]);
    t.row_owned(vec!["flash reads".into(), m.flash_reads.to_string()]);
    t.row_owned(vec!["spans".into(), m.spans.len().to_string()]);
    t.row_owned(vec!["spans dropped".into(), m.spans.dropped().to_string()]);
    let router = m.router.unwrap_or_default();
    t.row_owned(vec!["router routed".into(), router.routed.to_string()]);
    t.row_owned(vec![
        "router cross-channel".into(),
        router.cross_channel.to_string(),
    ]);
    if let Some(ftl) = m.ftl {
        t.row_owned(vec!["ftl erases".into(), ftl.erases.to_string()]);
        t.row_owned(vec!["ftl waf".into(), format!("{:.3}", ftl.waf())]);
    }
    t.row_owned(vec![
        "report sections".into(),
        reg.section_names().len().to_string(),
    ]);
    let _ = writeln!(out, "{}", t.render());
    print!("{out}");

    if let Some(path) = trace {
        let file = File::create(&path).unwrap_or_else(|e| {
            eprintln!("create {path}: {e}");
            std::process::exit(1);
        });
        simkit::ChromeTraceWriter::write(&m.spans, BufWriter::new(file)).unwrap_or_else(|e| {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("trace written to {path} ({} spans)", m.spans.len());
        if m.spans.dropped() > 0 {
            eprintln!(
                "warning: {} spans were dropped at capacity {} — the exported trace is \
                 incomplete; re-run with a larger span capacity",
                m.spans.dropped(),
                m.spans.capacity()
            );
        }
    }
    if let Some(path) = metrics {
        let file = File::create(&path).unwrap_or_else(|e| {
            eprintln!("create {path}: {e}");
            std::process::exit(1);
        });
        reg.write_json(BufWriter::new(file)).unwrap_or_else(|e| {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}

/// `latency [--metrics PATH] [--latency-csv PATH] [--window-csv PATH]`
/// — the per-query latency figure: tail percentiles and critical-path
/// attribution for BG-2 vs baselines across arrival intensities. The
/// export flags dump the showcase cell (BG-2 at the highest intensity):
/// `--metrics` its full registry JSON, `--latency-csv` one row per
/// query with stage attribution, `--window-csv` per-sim-time-epoch
/// percentiles.
///
/// Everything derives from the simulation alone, so stdout and all
/// three exports are byte-identical at any `--jobs` count and whether
/// or not replay is enabled — CI diffs them across both axes.
fn latency(args: &[String]) {
    let mut metrics: Option<String> = None;
    let mut query_csv: Option<String> = None;
    let mut window_csv: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} expects a path");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--metrics" => metrics = Some(value("--metrics")),
            "--latency-csv" => query_csv = Some(value("--latency-csv")),
            "--window-csv" => window_csv = Some(value("--window-csv")),
            other => {
                eprintln!("unknown latency flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    print!("{}", latency_figure_text());

    if metrics.is_none() && query_csv.is_none() && window_csv.is_none() {
        return;
    }
    let m = bench::latency_showcase(DEFAULT_NODES);
    let create = |path: &str| {
        File::create(path).unwrap_or_else(|e| {
            eprintln!("create {path}: {e}");
            std::process::exit(1);
        })
    };
    if let Some(path) = metrics {
        m.metrics_registry()
            .write_json(BufWriter::new(create(&path)))
            .unwrap_or_else(|e| {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = query_csv {
        m.latency
            .write_query_csv(BufWriter::new(create(&path)))
            .unwrap_or_else(|e| {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!(
            "per-query latency written to {path} ({} queries)",
            m.latency.queries().len()
        );
    }
    if let Some(path) = window_csv {
        m.latency
            .write_window_csv(BufWriter::new(create(&path)))
            .unwrap_or_else(|e| {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!(
            "windowed latency written to {path} ({} windows)",
            m.latency.windows().len()
        );
    }
}

fn latency_figure_text() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "per-query latency — tail percentiles vs arrival intensity (amazon)",
    );
    let us = |ns: u64| format!("{:.1}us", ns as f64 / 1000.0);
    let rows = bench::latency_figure(DEFAULT_NODES);
    let mut t = Table::new(&[
        "platform",
        "batch",
        "mean",
        "p50",
        "p99",
        "p99.9",
        "max",
        "queueing",
        "dominant stage",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.platform.to_string(),
            r.batch_size.to_string(),
            format!("{:.1}us", r.mean_ns / 1000.0),
            us(r.p50_ns),
            us(r.p99_ns),
            us(r.p999_ns),
            us(r.max_ns),
            percent(r.queue_frac),
            format!("{} ({})", r.dominant, percent(r.dominant_frac)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "larger batches raise per-query queueing (all roots submit at once); BG-2's\n\
         out-of-order streaming keeps the tail flat where CC pays PCIe staging and\n\
         BG-1 pays the hop barrier on every chain"
    );
    out
}
