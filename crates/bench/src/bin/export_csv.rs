//! Exports every experiment's results as CSV files for external
//! plotting (one file per table/figure).
//!
//! ```sh
//! cargo run --release -p beacon-bench --bin export_csv -- out_dir
//! cargo run --release -p beacon-bench --bin export_csv -- out_dir --jobs 8
//! ```
//!
//! `--jobs N` (default: all available cores) parallelizes the
//! underlying simulation sweeps; the CSV contents are byte-identical
//! at any job count.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use beacon_bench as bench;
use beacon_bench::{Sweep, DEFAULT_BATCH, DEFAULT_NODES};
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use simkit::obs::format_f64;
use simkit::MetricValue;

fn main() -> std::io::Result<()> {
    let mut jobs = beacongnn::default_jobs();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--jobs=") => {
                let v = &other["--jobs=".len()..];
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            _ => positional.push(arg),
        }
    }
    bench::set_jobs(jobs);
    let dir = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "experiment_csv".to_string());
    fs::create_dir_all(&dir)?;
    let dir = Path::new(&dir);

    // Fig 7a.
    {
        let mut w = writer(dir, "fig7a_die_scaling.csv")?;
        writeln!(w, "dies,throughput_pages_per_s,avg_latency_ns")?;
        for p in bench::fig7a() {
            writeln!(w, "{},{},{}", p.dies, p.throughput, p.avg_latency.as_ns())?;
        }
    }

    // Fig 14.
    {
        let mut w = writer(dir, "fig14_throughput.csv")?;
        writeln!(w, "dataset,platform,normalized_vs_cc,targets_per_s")?;
        for r in bench::fig14(DEFAULT_NODES, DEFAULT_BATCH) {
            writeln!(
                w,
                "{},{},{:.4},{:.1}",
                r.dataset, r.platform, r.normalized, r.targets_per_sec
            )?;
        }
    }

    // Fig 15 curves.
    {
        let mut w = writer(dir, "fig15_utilization.csv")?;
        writeln!(w, "platform,slice_index,active_dies,active_channels")?;
        for p in [Platform::BgSp, Platform::BgDgsp, Platform::Bg2] {
            let c = bench::fig15_curves(p, DEFAULT_NODES, DEFAULT_BATCH);
            for (i, (d, ch)) in c.dies.iter().zip(&c.channels).enumerate() {
                writeln!(w, "{},{},{:.3},{:.3}", p, i, d, ch)?;
            }
        }
    }

    // Fig 16 hop windows.
    {
        let mut w = writer(dir, "fig16_hop_timeline.csv")?;
        writeln!(w, "platform,hop,start_ns,end_ns")?;
        for p in Platform::BG_CHAIN {
            let m = bench::fig16(p, DEFAULT_NODES, 64);
            for hw in &m.hop_windows {
                writeln!(
                    w,
                    "{},{},{},{}",
                    p,
                    hw.hop,
                    hw.start.as_ns(),
                    hw.end.as_ns()
                )?;
            }
        }
    }

    // Fig 17 breakdown.
    {
        let mut w = writer(dir, "fig17_cmd_breakdown.csv")?;
        writeln!(
            w,
            "platform,wait_before_frac,flash_frac,wait_after_frac,mean_lifetime_ns"
        )?;
        for p in Platform::BG_CHAIN {
            let m = bench::fig17(p, DEFAULT_NODES, DEFAULT_BATCH);
            let (a, b, c) = m.cmd_breakdown.fractions();
            writeln!(
                w,
                "{},{:.4},{:.4},{:.4},{:.1}",
                p,
                a,
                b,
                c,
                m.cmd_breakdown.mean_lifetime_ns()
            )?;
        }
    }

    // Fig 18 sweeps.
    {
        let mut w = writer(dir, "fig18_sensitivity.csv")?;
        writeln!(w, "sweep,platform,point,targets_per_s")?;
        for sweep in Sweep::ALL {
            for r in bench::fig18(sweep, DEFAULT_NODES) {
                writeln!(
                    w,
                    "{},{},{},{:.1}",
                    sweep.name(),
                    r.platform,
                    r.point,
                    r.targets_per_sec
                )?;
            }
        }
    }

    // Fig 19 energy.
    {
        let mut w = writer(dir, "fig19_energy.csv")?;
        writeln!(
            w,
            "platform,flash_j,channel_j,dram_j,pcie_j,cores_j,host_j,accel_j,\
             targets_per_joule,avg_power_w"
        )?;
        for r in bench::fig19(DEFAULT_NODES, DEFAULT_BATCH) {
            let b = r.breakdown;
            writeln!(
                w,
                "{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.2},{:.2}",
                r.platform,
                b.flash,
                b.channel,
                b.dram,
                b.pcie,
                b.cores,
                b.host,
                b.accel,
                r.efficiency,
                r.avg_power
            )?;
        }
    }

    // Table IV.
    {
        let mut w = writer(dir, "table4_inflation.csv")?;
        writeln!(w, "dataset,paper_raw_gb,inflation,page_utilization")?;
        for r in bench::table4(DEFAULT_NODES) {
            writeln!(
                w,
                "{},{},{:.4},{:.4}",
                r.dataset, r.paper_raw_gb, r.inflation, r.page_utilization
            )?;
        }
    }

    // §VII-E.
    {
        let mut w = writer(dir, "sec7e_traditional.csv")?;
        writeln!(w, "platform,normalized_vs_cc")?;
        for (p, x) in bench::traditional_ssd(DEFAULT_NODES, DEFAULT_BATCH) {
            writeln!(w, "{p},{x:.4}")?;
        }
    }

    // §VIII extensions.
    {
        let mut w = writer(dir, "ext_query_latency.csv")?;
        writeln!(w, "platform,mean_ns,max_ns")?;
        for r in bench::query_latency(DEFAULT_NODES, 6) {
            writeln!(w, "{},{},{}", r.platform, r.mean.as_ns(), r.max.as_ns())?;
        }
    }
    {
        let mut w = writer(dir, "ext_array_scaling.csv")?;
        writeln!(w, "ssds,array_targets_per_s,efficiency,cross_fraction")?;
        for r in bench::array_scaling(DEFAULT_NODES, 128) {
            writeln!(
                w,
                "{},{:.1},{:.4},{:.4}",
                r.ssds,
                r.array_throughput,
                r.efficiency(),
                r.cross_fraction
            )?;
        }
    }
    {
        let mut w = writer(dir, "ext_latency_tail.csv")?;
        writeln!(
            w,
            "platform,batch_size,mean_ns,p50_ns,p99_ns,p999_ns,max_ns,\
             queue_frac,dominant,dominant_frac"
        )?;
        for r in bench::latency_figure(DEFAULT_NODES) {
            writeln!(
                w,
                "{},{},{:.1},{},{},{},{},{:.4},{},{:.4}",
                r.platform,
                r.batch_size,
                r.mean_ns,
                r.p50_ns,
                r.p99_ns,
                r.p999_ns,
                r.max_ns,
                r.queue_frac,
                r.dominant,
                r.dominant_frac
            )?;
        }
    }
    {
        let mut w = writer(dir, "ext_interference.csv")?;
        writeln!(w, "batch_size,batch_window_ns,expected_deferral_ns")?;
        for r in bench::interference(DEFAULT_NODES) {
            writeln!(
                w,
                "{},{},{}",
                r.batch_size,
                r.batch_window.as_ns(),
                r.expected_deferral.as_ns()
            )?;
        }
    }

    // Full metrics registry, one row per field. Sections and fields
    // are enumerated generically, so sections added later (`pools`,
    // `replay`, ...) land here automatically instead of being dropped
    // by a hardcoded list.
    {
        let mut w = writer(dir, "metrics_registry.csv")?;
        writeln!(w, "platform,section,field,value")?;
        let wl = bench::workload(Dataset::Amazon, DEFAULT_NODES, DEFAULT_BATCH);
        for p in Platform::BG_CHAIN {
            let m = Experiment::new(&wl).run(p);
            for (section, s) in m.metrics_registry().iter() {
                for (field, value) in s.iter() {
                    let v = match value {
                        MetricValue::Bool(b) => b.to_string(),
                        MetricValue::U64(x) => x.to_string(),
                        MetricValue::F64(x) => format_f64(*x),
                        MetricValue::Str(s) => s.clone(),
                    };
                    writeln!(w, "{p},{section},{field},{v}")?;
                }
            }
        }
    }

    println!("CSV files written to {}", dir.display());
    let _ = Dataset::ALL; // re-exported for plotting scripts' reference
    Ok(())
}

fn writer(dir: &Path, name: &str) -> std::io::Result<BufWriter<File>> {
    Ok(BufWriter::new(File::create(dir.join(name))?))
}
