//! # beacon-bench — the evaluation harness (paper §VII)
//!
//! One function per table/figure, each returning structured results so
//! the `experiments` binary, the Criterion benches, and the regression
//! tests all share the same code path. See DESIGN.md's experiment index
//! for the mapping.
//!
//! Scales: the paper runs hundred-GB datasets on a simulated 1 TB SSD;
//! this harness defaults to 10–20k-node synthetic graphs with matched
//! degree/feature shape (see DESIGN.md, substitutions). All figures are
//! *normalized*, so shapes — who wins, by what factor, where crossovers
//! fall — are the reproduction target, not absolute values.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use beacon_energy::EnergyCosts;
use beacon_graph::{CsrGraph, Partition};
use beacon_platforms::motivation::{die_scaling_sweep, DieScalingPoint};
use beacon_platforms::{ArrayConfig, ArrayRunMetrics, Platform, RunMetrics};
use beacon_ssd::FabricConfig;
use beacongnn::{Dataset, Experiment, RunCell, RunMatrix, SsdConfig, Workload, WorkloadCache};
use simkit::Duration;

/// Default node scale for harness workloads.
pub const DEFAULT_NODES: usize = 12_000;
/// Default mini-batch size (the paper's largest sweep point).
pub const DEFAULT_BATCH: usize = 256;
/// Default batches per run.
pub const DEFAULT_BATCHES: usize = 3;
/// Default seed.
pub const SEED: u64 = 2024;

/// Worker-thread count used by every matrix-backed figure (default 1 =
/// sequential). Cell seeds are fixed before execution, so results are
/// byte-identical at any setting; this only trades wall-clock time.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker-thread count for matrix-backed figures.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The worker-thread count currently in effect.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Executes a figure's matrix under the harness-wide jobs setting.
fn run_matrix(matrix: &RunMatrix) -> Vec<RunMetrics> {
    matrix.run_parallel(jobs())
}

/// The process-wide workload cache: figures that share a dataset shape
/// (most of them reuse amazon at harness scale) prepare it exactly
/// once and share the image via `Arc`.
fn cache() -> &'static WorkloadCache {
    static CACHE: OnceLock<WorkloadCache> = OnceLock::new();
    CACHE.get_or_init(WorkloadCache::new)
}

/// Prepares (or fetches from the cache) a workload with an explicit
/// batch count.
fn workload_with(dataset: Dataset, nodes: usize, batch: usize, batches: usize) -> Arc<Workload> {
    cache()
        .get_or_prepare(
            Workload::builder()
                .dataset(dataset)
                .nodes(nodes)
                .batch_size(batch)
                .batches(batches)
                .seed(SEED),
        )
        .expect("harness workload prepares")
}

/// Prepares the standard workload for `dataset` at harness scale.
/// Cached: repeated calls with the same shape share one prepared image.
pub fn workload(dataset: Dataset, nodes: usize, batch: usize) -> Arc<Workload> {
    workload_with(dataset, nodes, batch, DEFAULT_BATCHES)
}

/// Small-scale workload for Criterion benches (kept fast).
pub fn bench_workload(dataset: Dataset) -> Arc<Workload> {
    workload_with(dataset, 2_000, 32, 1)
}

// ---------------------------------------------------------------------
// Fig 7a — motivation: ULL die scaling under page-granular transfer.
// ---------------------------------------------------------------------

/// Runs the Fig 7a die-scaling sweep on ULL flash.
pub fn fig7a() -> Vec<DieScalingPoint> {
    die_scaling_sweep(&beacon_flash::FlashTiming::ull(), 8, 4096, 400)
}

// ---------------------------------------------------------------------
// Fig 7b — motivation: the inter-hop barrier idles flash resources.
// ---------------------------------------------------------------------

/// One Fig 7b measurement: how much die time the hop-by-hop barrier
/// wastes, measured as the utilization gap between BG-SP (barriered)
/// and BG-DGSP (out-of-order) with identical hardware.
#[derive(Debug, Clone, Copy)]
pub struct BarrierIdleRow {
    /// Mini-batch size.
    pub batch_size: usize,
    /// BG-SP mean die utilization.
    pub barriered_util: f64,
    /// BG-DGSP mean die utilization.
    pub out_of_order_util: f64,
    /// Prep-time inflation caused by the barrier (BG-SP / BG-DGSP).
    pub prep_inflation: f64,
}

/// Runs the Fig 7b barrier-cost sweep over batch sizes.
pub fn fig7b(nodes: usize) -> Vec<BarrierIdleRow> {
    let sizes = [32usize, 64, 128, 256];
    let mut matrix = RunMatrix::new();
    for &batch_size in &sizes {
        let w = workload_with(Dataset::Amazon, nodes, batch_size, 2);
        matrix.add_platforms(&[Platform::BgSp, Platform::BgDgsp], &w);
    }
    let results = run_matrix(&matrix);
    sizes
        .iter()
        .zip(results.chunks(2))
        .map(|(&batch_size, pair)| {
            let (sp, dgsp) = (&pair[0], &pair[1]);
            BarrierIdleRow {
                batch_size,
                barriered_util: sp.die_utilization(),
                out_of_order_util: dgsp.die_utilization(),
                prep_inflation: sp.prep_time.as_ns() as f64 / dgsp.prep_time.as_ns() as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig 14 — normalized throughput across platforms × workloads.
// ---------------------------------------------------------------------

/// One Fig 14 cell.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Workload.
    pub dataset: Dataset,
    /// Platform.
    pub platform: Platform,
    /// Throughput normalized to CC on the same workload.
    pub normalized: f64,
    /// Absolute throughput in targets/second.
    pub targets_per_sec: f64,
}

/// Builds the Fig 14 matrix: all eight platforms × all five workloads,
/// dataset-major (the same cell order [`fig14`] reports).
pub fn fig14_matrix(nodes: usize, batch: usize) -> RunMatrix {
    let mut matrix = RunMatrix::new();
    for dataset in Dataset::ALL {
        let w = workload(dataset, nodes, batch);
        matrix.add_platforms(&Platform::ALL, &w);
    }
    matrix
}

/// Folds one-per-cell metrics of [`fig14_matrix`] into Fig 14 rows.
pub fn fig14_rows(results: &[RunMetrics]) -> Vec<Fig14Row> {
    let nplat = Platform::ALL.len();
    let cc_idx = Platform::ALL
        .iter()
        .position(|&p| p == Platform::Cc)
        .expect("CC baseline in platform list");
    let mut rows = Vec::with_capacity(results.len());
    for (di, dataset) in Dataset::ALL.into_iter().enumerate() {
        let chunk = &results[di * nplat..(di + 1) * nplat];
        let cc = chunk[cc_idx].throughput();
        for (p, m) in Platform::ALL.into_iter().zip(chunk) {
            let t = m.throughput();
            rows.push(Fig14Row {
                dataset,
                platform: p,
                normalized: t / cc,
                targets_per_sec: t,
            });
        }
    }
    rows
}

/// Runs all eight platforms on all five workloads.
pub fn fig14(nodes: usize, batch: usize) -> Vec<Fig14Row> {
    fig14_rows(&run_matrix(&fig14_matrix(nodes, batch)))
}

/// The geometric-mean normalized throughput of `platform` across all
/// datasets in `rows`.
pub fn geomean_normalized(rows: &[Fig14Row], platform: Platform) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.platform == platform)
        .map(|r| r.normalized)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

// ---------------------------------------------------------------------
// Fig 15 — flash resource utilization + stage latency breakdown.
// ---------------------------------------------------------------------

/// Fig 15a–e: per-slice active die/channel curves for one platform.
#[derive(Debug, Clone)]
pub struct UtilizationCurves {
    /// Platform.
    pub platform: Platform,
    /// Mean active dies per time slice.
    pub dies: Vec<f64>,
    /// Mean active channels per time slice.
    pub channels: Vec<f64>,
    /// Slice width used.
    pub slice: Duration,
    /// Mean die utilization (fraction of all dies).
    pub die_utilization: f64,
    /// Mean channel utilization (fraction of all channels).
    pub channel_utilization: f64,
}

/// Runs one platform on amazon and extracts its utilization curves.
pub fn fig15_curves(platform: Platform, nodes: usize, batch: usize) -> UtilizationCurves {
    let w = workload(Dataset::Amazon, nodes, batch);
    let m = Experiment::new(&w).run(platform);
    let slice = Duration::from_us(50);
    let end = simkit::SimTime::ZERO + m.prep_time;
    UtilizationCurves {
        platform,
        dies: m.die_timeline.curve(slice, end),
        channels: m.channel_timeline.curve(slice, end),
        slice,
        die_utilization: m.die_utilization(),
        channel_utilization: m.channel_utilization(),
    }
}

/// Fig 15f: runs one platform on amazon and returns its metrics (the
/// stage breakdown lives in [`RunMetrics::stages`]).
pub fn fig15f(platform: Platform, nodes: usize, batch: usize) -> RunMetrics {
    let w = workload(Dataset::Amazon, nodes, batch);
    Experiment::new(&w).run(platform)
}

/// Fig 15a–e's per-workload claim: BG-2's die/channel utilization per
/// dataset. The paper observes reddit/PPI die-starved (long features
/// saturate channel transfer) and movielens/OGBN channel-starved (short
/// features transfer quickly), with amazon highest on both.
pub fn fig15_dataset_utilization(nodes: usize, batch: usize) -> Vec<(Dataset, f64, f64)> {
    let mut matrix = RunMatrix::new();
    for d in Dataset::ALL {
        matrix.push(RunCell::new(Platform::Bg2, workload(d, nodes, batch)));
    }
    Dataset::ALL
        .into_iter()
        .zip(run_matrix(&matrix))
        .map(|(d, m)| (d, m.die_utilization(), m.channel_utilization()))
        .collect()
}

// ---------------------------------------------------------------------
// Fig 16 — hop timeline.
// ---------------------------------------------------------------------

/// Hop windows of one platform's first batch on amazon.
pub fn fig16(platform: Platform, nodes: usize, batch: usize) -> RunMetrics {
    let w = workload(Dataset::Amazon, nodes, batch);
    Experiment::new(&w).run(platform)
}

/// Fraction of hop-window time that overlaps an adjacent hop (0 for a
/// strictly barriered platform).
pub fn hop_overlap_fraction(m: &RunMetrics) -> f64 {
    let mut overlap = Duration::ZERO;
    let mut total = Duration::ZERO;
    for w in m.hop_windows.windows(2) {
        total += w[1].span();
        if w[1].start < w[0].end {
            overlap += w[0].end - w[1].start;
        }
    }
    if total.is_zero() {
        return 0.0;
    }
    overlap.as_ns() as f64 / total.as_ns() as f64
}

// ---------------------------------------------------------------------
// Fig 17 — command latency breakdown.
// ---------------------------------------------------------------------

/// Runs one platform on amazon; the breakdown lives in
/// [`RunMetrics::cmd_breakdown`].
pub fn fig17(platform: Platform, nodes: usize, batch: usize) -> RunMetrics {
    let w = workload(Dataset::Amazon, nodes, batch);
    Experiment::new(&w).run(platform)
}

// ---------------------------------------------------------------------
// Fig 18 — sensitivity sweeps (batch, bandwidth, cores, channels,
// dies, page size).
// ---------------------------------------------------------------------

/// Which Fig 18 sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// Fig 18a: mini-batch size 32–256.
    BatchSize,
    /// Fig 18b: channel bandwidth 333–2400 MB/s.
    ChannelBandwidth,
    /// Fig 18c: controller cores 1–8.
    Cores,
    /// Fig 18d: flash channels (dies/channel fixed).
    Channels,
    /// Fig 18e: dies per channel.
    DiesPerChannel,
    /// Fig 18f: flash page size 2–16 KB.
    PageSize,
}

impl Sweep {
    /// All six sweeps in figure order.
    pub const ALL: [Sweep; 6] = [
        Sweep::BatchSize,
        Sweep::ChannelBandwidth,
        Sweep::Cores,
        Sweep::Channels,
        Sweep::DiesPerChannel,
        Sweep::PageSize,
    ];

    /// Figure-matching display name.
    pub fn name(self) -> &'static str {
        match self {
            Sweep::BatchSize => "batch size",
            Sweep::ChannelBandwidth => "channel bandwidth (MB/s)",
            Sweep::Cores => "controller cores",
            Sweep::Channels => "flash channels",
            Sweep::DiesPerChannel => "dies per channel",
            Sweep::PageSize => "page size (B)",
        }
    }

    /// The paper's sweep points.
    pub fn points(self) -> Vec<u64> {
        match self {
            Sweep::BatchSize => vec![32, 64, 128, 256],
            Sweep::ChannelBandwidth => vec![333, 800, 1600, 2400],
            Sweep::Cores => vec![1, 2, 4, 8],
            Sweep::Channels => vec![4, 8, 16, 32],
            Sweep::DiesPerChannel => vec![2, 4, 8, 16],
            Sweep::PageSize => vec![2048, 4096, 8192, 16384],
        }
    }
}

/// One sensitivity measurement.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Platform.
    pub platform: Platform,
    /// Sweep-point value.
    pub point: u64,
    /// Absolute throughput at this point.
    pub targets_per_sec: f64,
}

/// Runs a Fig 18 sweep over the BG chain.
///
/// Device-only sweeps (bandwidth, cores, channels, dies) reuse one
/// cached workload across all points; batch-size and page-size points
/// change the workload itself and each prepare their own (also cached,
/// so repeated figure runs stay cheap).
pub fn fig18(sweep: Sweep, nodes: usize) -> Vec<SweepRow> {
    let points = sweep.points();
    let mut matrix = RunMatrix::new();
    for &point in &points {
        // Page size changes the DirectGraph image, so the workload must
        // be rebuilt per point for that sweep; batch size likewise.
        let (w, ssd) = match sweep {
            Sweep::BatchSize => (
                workload_with(Dataset::Amazon, nodes, point as usize, DEFAULT_BATCHES),
                SsdConfig::paper_default(),
            ),
            Sweep::PageSize => (
                cache()
                    .get_or_prepare(
                        Workload::builder()
                            .dataset(Dataset::Amazon)
                            .nodes(nodes)
                            .batch_size(DEFAULT_BATCH)
                            .batches(DEFAULT_BATCHES)
                            .seed(SEED)
                            .page_size(point as usize),
                    )
                    .expect("prepare"),
                SsdConfig::paper_default().with_page_size(point as usize),
            ),
            Sweep::ChannelBandwidth => (
                workload(Dataset::Amazon, nodes, DEFAULT_BATCH),
                SsdConfig::paper_default().with_channel_bandwidth(point * 1_000_000),
            ),
            Sweep::Cores => (
                workload(Dataset::Amazon, nodes, DEFAULT_BATCH),
                SsdConfig::paper_default().with_cores(point as usize),
            ),
            Sweep::Channels => (
                workload(Dataset::Amazon, nodes, DEFAULT_BATCH),
                SsdConfig::paper_default().with_channels(point as usize),
            ),
            Sweep::DiesPerChannel => (
                workload(Dataset::Amazon, nodes, DEFAULT_BATCH),
                SsdConfig::paper_default().with_dies_per_channel(point as usize),
            ),
        };
        for p in Platform::BG_CHAIN {
            matrix.push(RunCell::new(p, Arc::clone(&w)).ssd(ssd));
        }
    }
    let results = run_matrix(&matrix);
    let nplat = Platform::BG_CHAIN.len();
    points
        .iter()
        .enumerate()
        .flat_map(|(pi, &point)| {
            Platform::BG_CHAIN
                .into_iter()
                .zip(&results[pi * nplat..(pi + 1) * nplat])
                .map(move |(platform, m)| SweepRow {
                    platform,
                    point,
                    targets_per_sec: m.throughput(),
                })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig 19 — energy breakdown and efficiency.
// ---------------------------------------------------------------------

/// One platform's energy results on amazon.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Platform.
    pub platform: Platform,
    /// Component breakdown.
    pub breakdown: beacon_energy::EnergyBreakdown,
    /// Targets per joule.
    pub efficiency: f64,
    /// Average power in watts over the run.
    pub avg_power: f64,
}

/// Runs the Fig 19 energy comparison on amazon.
pub fn fig19(nodes: usize, batch: usize) -> Vec<EnergyRow> {
    let w = workload(Dataset::Amazon, nodes, batch);
    let mut matrix = RunMatrix::new();
    matrix.add_platforms(&Platform::ALL, &w);
    let costs = EnergyCosts::default_costs();
    Platform::ALL
        .into_iter()
        .zip(run_matrix(&matrix))
        .map(|(p, m)| {
            let b = m.energy.breakdown(&costs);
            EnergyRow {
                platform: p,
                breakdown: b,
                efficiency: b.efficiency(m.targets),
                avg_power: b.avg_power(m.makespan),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §VII-E — traditional (20 µs) SSD.
// ---------------------------------------------------------------------

/// Runs the BG chain (plus CC) on all datasets with 20 µs flash,
/// returning average normalized throughput per platform.
pub fn traditional_ssd(nodes: usize, batch: usize) -> Vec<(Platform, f64)> {
    let mut sums: Vec<(Platform, f64)> = Platform::BG_CHAIN.iter().map(|&p| (p, 0.0)).collect();
    let n = Dataset::ALL.len() as f64;
    let mut matrix = RunMatrix::new();
    for dataset in Dataset::ALL {
        let w = workload(dataset, nodes, batch);
        matrix.push(RunCell::new(Platform::Cc, Arc::clone(&w)).ssd(SsdConfig::traditional()));
        for p in Platform::BG_CHAIN {
            matrix.push(RunCell::new(p, Arc::clone(&w)).ssd(SsdConfig::traditional()));
        }
    }
    let results = run_matrix(&matrix);
    let stride = 1 + Platform::BG_CHAIN.len();
    for chunk in results.chunks(stride) {
        let cc = chunk[0].throughput();
        for ((_, sum), m) in sums.iter_mut().zip(&chunk[1..]) {
            *sum += m.throughput() / cc / n;
        }
    }
    sums
}

// ---------------------------------------------------------------------
// Table IV — DirectGraph storage inflation.
// ---------------------------------------------------------------------

/// One Table IV row.
#[derive(Debug, Clone)]
pub struct InflationRow {
    /// Dataset.
    pub dataset: Dataset,
    /// Paper-reported raw size (GB), for the table's first row.
    pub paper_raw_gb: f64,
    /// Measured inflation ratio at harness scale.
    pub inflation: f64,
    /// Page utilization of the converted image.
    pub page_utilization: f64,
}

/// Computes DirectGraph inflation for all five datasets.
pub fn table4(nodes: usize) -> Vec<InflationRow> {
    Dataset::ALL
        .iter()
        .map(|&dataset| {
            let w = workload(dataset, nodes, 1);
            let report = w.directgraph().inflation(w.features());
            InflationRow {
                dataset,
                paper_raw_gb: w.spec().paper_raw_gb,
                inflation: report.inflation_ratio(),
                page_utilization: report.page_utilization(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §VIII extensions: GNN queries, storage arrays, DRAM mitigation.
// ---------------------------------------------------------------------

/// One platform's query-latency measurement (§VIII "support for GNN
/// query").
#[derive(Debug, Clone, Copy)]
pub struct QueryRow {
    /// Platform.
    pub platform: Platform,
    /// Mean latency of a single-target query.
    pub mean: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

/// Measures single-target query latency across platforms.
pub fn query_latency(nodes: usize, queries: usize) -> Vec<QueryRow> {
    let w = workload(Dataset::Amazon, nodes, 1);
    let qs: Vec<Vec<beacongnn::NodeId>> = (0..queries)
        .map(|i| vec![beacongnn::NodeId::new((i % nodes) as u32)])
        .collect();
    Platform::ALL
        .iter()
        .map(|&p| {
            let lat = beacon_platforms::measure_query_latency(
                p,
                SsdConfig::paper_default(),
                w.model(),
                w.directgraph(),
                &qs,
                SEED,
            );
            QueryRow {
                platform: p,
                mean: lat.mean,
                max: lat.max,
            }
        })
        .collect()
}

/// Runs the §VIII array-scaling evaluation for BG-2 at 1–8 SSDs.
pub fn array_scaling(nodes: usize, batch: usize) -> Vec<beacon_platforms::ArrayScaling> {
    let w = workload(Dataset::Amazon, nodes, batch);
    [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            beacon_platforms::evaluate_array(
                Platform::Bg2,
                beacon_platforms::ArrayConfig::pcie_p2p(n),
                SsdConfig::paper_default(),
                w.model(),
                w.directgraph(),
                w.batches(),
                SEED,
            )
        })
        .collect()
}

/// Graph partition strategy of the array's host router (see
/// [`Partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Node-id modulo: zero metadata, worst cut.
    Hash,
    /// Contiguous id ranges: preserves id-order locality.
    Range,
    /// Greedy BFS region growing: locality-aware.
    BfsGrow,
}

impl PartitionStrategy {
    /// All strategies in report order.
    pub const ALL: [PartitionStrategy; 3] = [
        PartitionStrategy::Hash,
        PartitionStrategy::Range,
        PartitionStrategy::BfsGrow,
    ];

    /// Column name used in the scale-out report.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::Range => "range",
            PartitionStrategy::BfsGrow => "bfs_grow",
        }
    }

    /// Builds the partition over `graph`.
    pub fn build(self, graph: &CsrGraph, k: u32) -> Partition {
        match self {
            PartitionStrategy::Hash => Partition::hash(graph, k),
            PartitionStrategy::Range => Partition::range(graph, k),
            PartitionStrategy::BfsGrow => Partition::bfs_grow(graph, k),
        }
    }
}

/// Device counts swept by the scale-out figure.
pub const SCALEOUT_DEVICES: [usize; 5] = [1, 2, 4, 8, 16];

/// The fabrics the scale-out figure sweeps: the §VIII PCIe-P2P
/// baseline, NVMe-oF (more bandwidth, much higher hop latency), and a
/// deliberately thin 1 GB/s link that exposes fabric saturation.
pub fn scaleout_fabrics() -> Vec<(&'static str, FabricConfig)> {
    vec![
        ("pcie_p2p", FabricConfig::pcie_p2p()),
        ("nvme_of", FabricConfig::nvme_of()),
        (
            "thin_1gbps",
            FabricConfig::pcie_p2p().with_bandwidth(1_000_000_000),
        ),
    ]
}

/// One simulated scale-out measurement.
#[derive(Debug, Clone)]
pub struct ScaleoutRow {
    /// Devices in the array.
    pub devices: usize,
    /// Partition strategy of the host router.
    pub strategy: PartitionStrategy,
    /// Fabric name (see [`scaleout_fabrics`]).
    pub fabric: &'static str,
    /// Per-link fabric bandwidth in GB/s.
    pub fabric_gbps: f64,
    /// Array throughput, targets/second.
    pub targets_per_sec: f64,
    /// Scaling efficiency (1.0 = linear).
    pub efficiency: f64,
    /// Static cut fraction of the partition over the source graph.
    pub cut_fraction: f64,
    /// Fraction of *sampled* edges that crossed devices at run time.
    pub cross_fraction: f64,
    /// Total cross-device fabric traffic in MB (command hops + feature
    /// returns).
    pub fabric_mb: f64,
}

/// The scale-out figure's full result: the sweep grid plus one showcase
/// run whose per-device/fabric-link metrics registry backs `--metrics`.
#[derive(Debug, Clone)]
pub struct ScaleoutReport {
    /// Devices × strategy × fabric grid, in sweep order.
    pub rows: Vec<ScaleoutRow>,
    /// The 8-device bfs_grow PCIe-P2P cell's full metrics.
    pub showcase: ArrayRunMetrics,
}

/// Runs the §VIII scale-out sweep: BG-2 on 1–16 simulated devices
/// under each partition strategy and fabric. The sampling cascade is
/// recorded once from the serial engine and replayed per cell (it
/// depends on none of the swept parameters), so the sweep costs one
/// full simulation plus cheap timing replays.
pub fn scaleout(nodes: usize, batch: usize, threads: usize) -> ScaleoutReport {
    let w = workload(Dataset::Amazon, nodes, batch);
    let exp = Experiment::new(&w);
    let cascade = exp
        .array_engine(Platform::Bg2, ArrayConfig::pcie_p2p(1))
        .record(w.batches());
    let mut rows = Vec::new();
    let mut showcase = None;
    for &devices in &SCALEOUT_DEVICES {
        for strategy in PartitionStrategy::ALL {
            let part = strategy.build(w.graph(), devices as u32);
            let cut = part.cut_fraction(w.graph());
            for (fabric, cfg) in scaleout_fabrics() {
                let m = exp
                    .array_engine(
                        Platform::Bg2,
                        ArrayConfig::pcie_p2p(devices).with_fabric(cfg),
                    )
                    .threads(threads)
                    .run_recorded(&cascade, &part);
                rows.push(ScaleoutRow {
                    devices,
                    strategy,
                    fabric,
                    fabric_gbps: cfg.bandwidth as f64 / 1e9,
                    targets_per_sec: m.throughput(),
                    efficiency: m.efficiency(),
                    cut_fraction: cut,
                    cross_fraction: m.cross_fraction(),
                    fabric_mb: m.fabric_bytes() as f64 / 1e6,
                });
                if devices == 8 && strategy == PartitionStrategy::BfsGrow && fabric == "pcie_p2p" {
                    showcase = Some(m);
                }
            }
        }
    }
    ScaleoutReport {
        rows,
        showcase: showcase.expect("8-device bfs_grow pcie_p2p cell in sweep"),
    }
}

/// §VIII DRAM-bottleneck ablation: BG-2 throughput on a scaled-up
/// backend (32 channels × 16 dies, where aggregate flash throughput
/// exceeds the DRAM's) with baseline DRAM, HBM, and flash→SRAM bypass.
pub fn dram_ablation(nodes: usize, batch: usize) -> Vec<(&'static str, f64)> {
    let w = workload(Dataset::Amazon, nodes, batch);
    let base = SsdConfig::paper_default()
        .with_channels(32)
        .with_dies_per_channel(16);
    let configs: Vec<(&'static str, SsdConfig)> = vec![
        ("32ch x 16die, baseline DRAM", base),
        ("32ch x 16die, HBM", base.with_hbm()),
        (
            "32ch x 16die, flash->SRAM bypass",
            base.with_dram_bypass(true),
        ),
    ];
    configs
        .into_iter()
        .map(|(name, ssd)| {
            // Report the data-preparation rate: at this geometry the
            // backend outruns the mini-batch computation, so end-to-end
            // throughput would mask the DRAM effect §VIII describes.
            let m = Experiment::new(&w).ssd(ssd).run(Platform::Bg2);
            let prep_rate = m.targets as f64 / m.prep_time.as_secs_f64();
            (name, prep_rate)
        })
        .collect()
}

/// §VI-G: the cost acceleration mode imposes on regular storage I/O.
///
/// A regular request arriving mid-batch defers to the batch boundary;
/// with arrivals uniform over the batch window, the expected extra
/// latency is half the batch's makespan (plus the device's ordinary
/// service time). This measures that deferral window per batch size.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceRow {
    /// Mini-batch size.
    pub batch_size: usize,
    /// One batch's makespan (the deferral window).
    pub batch_window: Duration,
    /// Expected added latency for a uniformly arriving regular request.
    pub expected_deferral: Duration,
}

// ---------------------------------------------------------------------
// Observability smoke — one observed run + a parallel matrix summary.
// ---------------------------------------------------------------------

/// Runs one platform with the sim-time observability layer enabled on
/// the cached workload. Timing matches the unobserved run; only the
/// returned metrics carry spans and router/FTL/occupancy statistics.
pub fn observed_run(
    platform: Platform,
    dataset: Dataset,
    nodes: usize,
    batch: usize,
    span_capacity: usize,
) -> RunMetrics {
    let w = workload(dataset, nodes, batch);
    Experiment::new(&w).run_observed(platform, span_capacity)
}

/// Builds the observability smoke report: the observed run's full
/// metrics registry plus a `matrix` section summarizing all eight
/// platforms on the same workload, executed through the parallel
/// runner at the configured job count.
///
/// Every value derives from the simulation alone — no wall-clock, no
/// host topology — so the report is byte-identical at any `--jobs`.
pub fn obs_report(
    platform: Platform,
    dataset: Dataset,
    nodes: usize,
    batch: usize,
) -> (RunMetrics, simkit::MetricsRegistry) {
    let m = observed_run(platform, dataset, nodes, batch, 1 << 20);
    let mut reg = m.metrics_registry();

    let w = workload(dataset, nodes, batch);
    let mut matrix = RunMatrix::new();
    matrix.add_platforms(&Platform::ALL, &w);
    let results = run_matrix(&matrix);
    let sec = reg.section("matrix");
    sec.set_str("dataset", dataset.name());
    sec.set_u64("cells", results.len() as u64);
    for (p, r) in Platform::ALL.iter().zip(&results) {
        sec.set_f64(&format!("{p}_throughput"), r.throughput());
        sec.set_duration(&format!("{p}_makespan"), r.makespan);
    }
    (m, reg)
}

// ---------------------------------------------------------------------
// Latency figure — per-query tail latency vs arrival intensity.
// ---------------------------------------------------------------------

/// Platforms compared by the latency figure: BG-2 against the
/// software-defined baseline (CC) and the barriered in-storage design
/// (BG-1).
pub const LATENCY_PLATFORMS: [Platform; 3] = [Platform::Cc, Platform::Bg1, Platform::Bg2];

/// Arrival intensities (mini-batch sizes) swept by the latency figure.
pub const LATENCY_BATCHES: [usize; 4] = [32, 64, 128, 256];

/// Windowing epoch of the latency report's time series.
pub const LATENCY_EPOCH: Duration = Duration::from_ms(1);

/// One latency-figure cell: a platform at one arrival intensity, with
/// its tail percentiles and the critical-path split between queueing
/// and the dominant service stage.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Platform.
    pub platform: Platform,
    /// Mini-batch size (the arrival-intensity knob: every query in a
    /// batch is submitted at once, so larger batches mean more
    /// contention per query).
    pub batch_size: usize,
    /// Mean per-query latency.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// Tail percentiles.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst query.
    pub max_ns: u64,
    /// Queueing share of the summed critical paths.
    pub queue_frac: f64,
    /// The non-queue stage owning the largest critical-path share.
    pub dominant: &'static str,
    /// That stage's share of the summed critical paths.
    pub dominant_frac: f64,
}

fn latency_row(platform: Platform, batch_size: usize, m: &RunMetrics) -> LatencyRow {
    use simkit::Stage;
    let lat = &m.latency;
    let h = lat.histogram();
    let total = Stage::ALL
        .iter()
        .map(|&s| lat.stage_total_ns(s))
        .sum::<u64>()
        .max(1) as f64;
    let (dominant, dom_ns) = Stage::ALL
        .iter()
        .filter(|&&s| s != Stage::Queue)
        .map(|&s| (s.as_str(), lat.stage_total_ns(s)))
        .max_by_key(|&(_, ns)| ns)
        .unwrap_or(("other", 0));
    LatencyRow {
        platform,
        batch_size,
        mean_ns: h.mean_ns().unwrap_or(0.0),
        p50_ns: h.percentile_ns(50, 100).unwrap_or(0),
        p99_ns: h.percentile_ns(99, 100).unwrap_or(0),
        p999_ns: h.percentile_ns(999, 1000).unwrap_or(0),
        max_ns: h.max_ns().unwrap_or(0),
        queue_frac: lat.stage_total_ns(Stage::Queue) as f64 / total,
        dominant,
        dominant_frac: dom_ns as f64 / total,
    }
}

/// Runs the latency figure: [`LATENCY_PLATFORMS`] at each arrival
/// intensity of [`LATENCY_BATCHES`], with per-query latency tracking
/// on. Each intensity's sampling cascade is recorded once and replayed
/// per platform (replay is byte-identical to the full path, so whether
/// `BEACON_REPLAY` is on changes only the wall-clock).
pub fn latency_figure(nodes: usize) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for &batch in &LATENCY_BATCHES {
        let w = workload_with(Dataset::Amazon, nodes, batch, 2);
        let exp = Experiment::new(&w);
        exp.prime_replay();
        for p in LATENCY_PLATFORMS {
            let m = exp.run_latency(p, LATENCY_EPOCH);
            rows.push(latency_row(p, batch, &m));
        }
    }
    rows
}

/// The latency figure's showcase cell — BG-2 at the highest swept
/// intensity — whose full metrics (per-query rows, windowed
/// histograms, registry sections) back the `experiments latency`
/// export flags.
pub fn latency_showcase(nodes: usize) -> RunMetrics {
    let batch = LATENCY_BATCHES[LATENCY_BATCHES.len() - 1];
    let w = workload_with(Dataset::Amazon, nodes, batch, 2);
    let exp = Experiment::new(&w);
    exp.prime_replay();
    exp.run_latency(Platform::Bg2, LATENCY_EPOCH)
}

/// Measures the §VI-G deferral window across batch sizes on BG-2.
pub fn interference(nodes: usize) -> Vec<InterferenceRow> {
    let sizes = [32usize, 64, 128, 256];
    let mut matrix = RunMatrix::new();
    for &batch_size in &sizes {
        let w = workload_with(Dataset::Amazon, nodes, batch_size, 1);
        matrix.push(RunCell::new(Platform::Bg2, w));
    }
    sizes
        .into_iter()
        .zip(run_matrix(&matrix))
        .map(|(batch_size, m)| InterferenceRow {
            batch_size,
            batch_window: m.makespan,
            expected_deferral: m.makespan / 2,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_shape() {
        let sweep = fig7a();
        assert_eq!(sweep.len(), 8);
        let gain = sweep[7].throughput / sweep[0].throughput;
        assert!((1.3..=1.8).contains(&gain), "8-die gain {gain:.2}");
    }

    #[test]
    fn fig14_small_scale_ordering() {
        let w = workload(Dataset::Amazon, 3_000, 64);
        let exp = Experiment::new(&w);
        let cc = exp.run(Platform::Cc).throughput();
        let bg2 = exp.run(Platform::Bg2).throughput();
        assert!(bg2 > 4.0 * cc, "BG-2/CC = {:.1}", bg2 / cc);
    }

    #[test]
    fn sweep_points_match_paper() {
        assert_eq!(Sweep::BatchSize.points(), vec![32, 64, 128, 256]);
        assert_eq!(Sweep::ChannelBandwidth.points(), vec![333, 800, 1600, 2400]);
        assert_eq!(Sweep::PageSize.points(), vec![2048, 4096, 8192, 16384]);
        for s in Sweep::ALL {
            assert!(!s.name().is_empty());
            assert!(!s.points().is_empty());
        }
    }

    #[test]
    fn hop_overlap_discriminates_platforms() {
        let barrier = fig16(Platform::Bg1, 2_000, 32);
        let ooo = fig16(Platform::Bg2, 2_000, 32);
        assert_eq!(hop_overlap_fraction(&barrier), 0.0);
        assert!(
            hop_overlap_fraction(&ooo) > 0.1,
            "{}",
            hop_overlap_fraction(&ooo)
        );
    }

    #[test]
    fn fig15_dataset_claims() {
        // Paper §VII-B: reddit/PPI have low DIE utilization even on
        // BG-2 (feature transfer dominates); movielens/OGBN have low
        // CHANNEL utilization (short features); amazon is the balanced
        // representative.
        let rows = fig15_dataset_utilization(3_000, 64);
        let get = |d: Dataset| {
            rows.iter()
                .find(|r| r.0 == d)
                .expect("all datasets present")
        };
        let amazon = get(Dataset::Amazon);
        for starved in [Dataset::Reddit, Dataset::Ppi] {
            assert!(
                get(starved).1 < amazon.1,
                "{starved} die util {:.2} should trail amazon {:.2}",
                get(starved).1,
                amazon.1
            );
        }
        for starved in [Dataset::Movielens, Dataset::Ogbn] {
            assert!(
                get(starved).2 < amazon.2,
                "{starved} channel util {:.2} should trail amazon {:.2}",
                get(starved).2,
                amazon.2
            );
        }
    }

    #[test]
    fn table4_ogbn_is_outlier() {
        let rows = table4(3_000);
        let ogbn = rows.iter().find(|r| r.dataset == Dataset::Ogbn).unwrap();
        for r in &rows {
            if r.dataset != Dataset::Ogbn {
                assert!(
                    ogbn.inflation > r.inflation,
                    "OGBN ({:.3}) should exceed {} ({:.3})",
                    ogbn.inflation,
                    r.dataset,
                    r.inflation
                );
            }
        }
    }

    #[test]
    fn scaleout_grid_shape_and_identities() {
        let report = scaleout(2_000, 32, 2);
        assert_eq!(
            report.rows.len(),
            SCALEOUT_DEVICES.len() * PartitionStrategy::ALL.len() * scaleout_fabrics().len()
        );
        for r in &report.rows {
            assert!(r.targets_per_sec > 0.0, "{r:?}");
            if r.devices == 1 {
                // One device is the serial engine verbatim: perfectly
                // efficient, nothing crosses the fabric.
                assert!((r.efficiency - 1.0).abs() < 1e-9, "{r:?}");
                assert_eq!(r.fabric_mb, 0.0, "{r:?}");
                assert_eq!(r.cross_fraction, 0.0, "{r:?}");
            } else {
                assert!(r.efficiency > 0.0 && r.efficiency <= 1.5, "{r:?}");
            }
        }
        assert_eq!(report.showcase.devices, 8);
        assert!(report.showcase.rounds > 0);
    }

    #[test]
    fn geomean_helper() {
        let rows = vec![
            Fig14Row {
                dataset: Dataset::Amazon,
                platform: Platform::Bg2,
                normalized: 4.0,
                targets_per_sec: 1.0,
            },
            Fig14Row {
                dataset: Dataset::Ppi,
                platform: Platform::Bg2,
                normalized: 16.0,
                targets_per_sec: 1.0,
            },
        ];
        assert!((geomean_normalized(&rows, Platform::Bg2) - 8.0).abs() < 1e-9);
        assert_eq!(geomean_normalized(&rows, Platform::Cc), 0.0);
    }
}
