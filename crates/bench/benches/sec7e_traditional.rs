//! §VII-E bench: platform runs on traditional (20 µs) flash.

use beacon_bench::bench_workload;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment, SsdConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w).ssd(SsdConfig::traditional());
    let mut g = c.benchmark_group("sec7e_traditional_ssd");
    g.sample_size(10);
    for p in [Platform::BgDgsp, Platform::Bg2] {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| black_box(exp.run(p).throughput()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
