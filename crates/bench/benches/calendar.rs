//! Calendar microbenchmarks: the hierarchical timing wheel under the
//! three op mixes the engine hot loop actually produces. These isolate
//! the `schedule`/`pop`/`cancel` costs from the rest of the simulator
//! so a calendar regression shows up here before it shows up as a
//! diffuse fig18 wall-clock drift.
//!
//! - **schedule_heavy** — bulk insertion followed by one full drain:
//!   the shape of engine warm-up, where a whole batch of arrivals is
//!   scheduled before the first pop.
//! - **drain_heavy** — a small steady-state live set where every pop
//!   schedules a successor (the engine's dominant regime: each event
//!   handler schedules the command's next hop).
//! - **cancel_heavy** — half the scheduled events are cancelled by key
//!   before the drain, exercising the generation-tagged tombstone path
//!   and the dead-count purge.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkit::{Calendar, SimTime};
use std::hint::black_box;

/// Events per iteration; large enough to cross wheel windows (the
/// near wheel spans 8192 ns) yet small enough for quick samples.
const EVENTS: u64 = 64 * 1024;

/// Deterministic xorshift64* stream — no external RNG crates, and the
/// benches must schedule the same sequence every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn schedule_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("schedule_heavy", |b| {
        let mut cal: Calendar<u64> = Calendar::new();
        b.iter(|| {
            cal.reset();
            let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
            // Mix of offsets: mostly near-wheel, a tail into the far
            // tier, matching the engine's service-time distribution.
            for i in 0..EVENTS {
                let spread = if i % 16 == 0 { 100_000 } else { 4_096 };
                cal.schedule(SimTime::from_ns(rng.next() % spread), i);
            }
            let mut acc = 0u64;
            while let Some((_, id)) = cal.pop() {
                acc = acc.wrapping_add(id);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn drain_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("drain_heavy", |b| {
        let mut cal: Calendar<u64> = Calendar::new();
        b.iter(|| {
            cal.reset();
            let mut rng = Rng(0xA076_1D64_78BD_642F);
            // Steady state: 256 live events; every pop reschedules one
            // successor a short service time ahead, so the wheel cursor
            // chases the watermark just like the engine's event loop.
            for i in 0..256u64 {
                cal.schedule(SimTime::from_ns(rng.next() % 512), i);
            }
            let mut acc = 0u64;
            for _ in 0..EVENTS {
                let (now, id) = cal.pop().expect("live set never empties");
                acc = acc.wrapping_add(id);
                let delay = 1 + rng.next() % 2_048;
                cal.schedule(now + simkit::Duration::from_ns(delay), id);
            }
            while cal.pop().is_some() {}
            black_box(acc)
        })
    });
    g.finish();
}

fn cancel_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("cancel_heavy", |b| {
        let mut cal: Calendar<u64> = Calendar::new();
        let mut keys = Vec::with_capacity(EVENTS as usize);
        b.iter(|| {
            cal.reset();
            keys.clear();
            let mut rng = Rng(0x5851_F42D_4C95_7F2D);
            for i in 0..EVENTS {
                keys.push(cal.schedule(SimTime::from_ns(rng.next() % 16_384), i));
            }
            // Cancel every other event, newest-first, so tombstones are
            // spread across occupied buckets rather than purged in
            // insertion order.
            let mut cancelled = 0u64;
            for k in keys.iter().rev().step_by(2) {
                cancelled += u64::from(cal.cancel(*k));
            }
            let mut acc = cancelled;
            while let Some((_, id)) = cal.pop() {
                acc = acc.wrapping_add(id);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, schedule_heavy, drain_heavy, cancel_heavy);
criterion_main!(benches);
