//! Fig 15 bench: utilization-curve extraction over a platform run.

use beacon_bench::bench_workload;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::{Duration, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let m = exp.run(Platform::Bg2);
    let end = SimTime::ZERO + m.prep_time;
    c.bench_function("fig15_curve_extraction", |b| {
        b.iter(|| {
            black_box(m.die_timeline.curve(Duration::from_us(50), end));
            black_box(m.channel_timeline.curve(Duration::from_us(50), end));
        })
    });
    c.bench_function("fig15_run_with_timelines", |b| {
        b.iter(|| black_box(exp.run(Platform::BgDgsp).die_utilization()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
