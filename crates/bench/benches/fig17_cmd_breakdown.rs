//! Fig 17 bench: per-command latency-phase accounting.

use beacon_bench::bench_workload;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let mut g = c.benchmark_group("fig17_cmd_breakdown");
    g.sample_size(10);
    for p in Platform::BG_CHAIN {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| {
                let m = exp.run(p);
                black_box(m.cmd_breakdown.fractions())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
