//! Simulator-performance benches: how fast the reproduction itself
//! runs (sampler executions/second, engine commands/second) — the
//! numbers that decide how large a workload the harness can sweep.

use beacon_bench::bench_workload;
use beacon_flash::{DieSampler, GnnDieConfig, SampleCommand};
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment, NodeId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn sampler_throughput(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let dg = w.directgraph();
    let cfg = GnnDieConfig {
        num_hops: 3,
        fanout: 3,
        feature_bytes: w.model().feature_bytes() as u16,
    };
    let mut g = c.benchmark_group("simulator_perf");
    g.throughput(Throughput::Elements(40));
    g.bench_function("sampler_cascade_per_target", |b| {
        let mut sampler = DieSampler::new(cfg, 11);
        let mut next = 0u32;
        b.iter(|| {
            let target = NodeId::new(next % 2_000);
            next = next.wrapping_add(1);
            let addr = dg.directory().primary_addr(target).unwrap();
            let mut frontier = vec![SampleCommand::root(addr, 0)];
            let mut visited = 0u64;
            while let Some(cmd) = frontier.pop() {
                let out = sampler.execute(&cmd, dg.image()).unwrap();
                if out.visited.is_some() {
                    visited += 1;
                }
                frontier.extend(out.new_commands);
            }
            black_box(visited)
        })
    });
    g.finish();
}

fn engine_event_rate(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let mut g = c.benchmark_group("simulator_perf");
    g.sample_size(10);
    // One run = 32 targets × ~40 visits × ~6 events.
    g.throughput(Throughput::Elements(32 * 40 * 6));
    g.bench_function("engine_events_bg2", |b| {
        b.iter(|| black_box(exp.run(Platform::Bg2).flash_reads))
    });
    g.finish();
}

criterion_group!(benches, sampler_throughput, engine_event_rate);
criterion_main!(benches);
