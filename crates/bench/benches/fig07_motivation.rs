//! Fig 7a bench: the die-scaling motivation experiment.

use beacon_flash::FlashTiming;
use beacon_platforms::motivation::die_scaling_point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_die_scaling");
    for dies in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(dies), &dies, |b, &dies| {
            b.iter(|| black_box(die_scaling_point(&FlashTiming::ull(), dies, 4096, 200)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
