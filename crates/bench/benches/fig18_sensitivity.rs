//! Fig 18 bench: one sensitivity point per sweep dimension.

use beacon_bench::bench_workload;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment, SsdConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let mut g = c.benchmark_group("fig18_sensitivity_point");
    g.sample_size(10);
    let configs: Vec<(&str, SsdConfig)> = vec![
        ("default", SsdConfig::paper_default()),
        (
            "bw-2400",
            SsdConfig::paper_default().with_channel_bandwidth(2_400_000_000),
        ),
        ("cores-1", SsdConfig::paper_default().with_cores(1)),
        ("channels-32", SsdConfig::paper_default().with_channels(32)),
        (
            "dies-16",
            SsdConfig::paper_default().with_dies_per_channel(16),
        ),
    ];
    for (name, ssd) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &ssd, |b, ssd| {
            let exp = Experiment::new(&w).ssd(*ssd);
            b.iter(|| black_box(exp.run(Platform::Bg2).throughput()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
