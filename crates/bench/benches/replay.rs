//! Replay-layer microbenchmarks: the three execution tiers of the
//! record-once / replay-many cache, isolated on one BG-2 cell so a
//! regression in any tier shows up here before it shows up as suite
//! wall-clock drift.
//!
//! - **full_run** — the uncached baseline: sampler + event drain end to
//!   end, exactly what a cell costs when its replay key misses.
//! - **cascade_replay** — re-times a pre-recorded cascade under the
//!   same config; measures the event drain alone, i.e. the irreducible
//!   floor replay cannot go below. The full_run / cascade_replay ratio
//!   is the honest per-cell replay speedup.
//! - **memo_hit** — an exact-cell memo hit through the public matrix
//!   path: the cache clones the memoized `RunMetrics` without touching
//!   the engine. This tier is where the >100x suite wins come from.

use beacon_platforms::{Engine, EngineScratch, Platform};
use beacongnn::{ReplayCache, RunCell, RunMatrix, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Small enough for quick samples, large enough that the cascade
/// crosses batch boundaries and the memo clone is non-trivial.
fn bench_workload() -> Workload {
    Workload::builder()
        .nodes(2_000)
        .batch_size(64)
        .batches(2)
        .seed(7)
        .prepare()
        .expect("synthetic workload prepares")
}

fn full_run(c: &mut Criterion) {
    let w = bench_workload();
    let mut g = c.benchmark_group("replay");
    g.bench_function("full_run", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| {
            let m = Engine::new(
                Platform::Bg2,
                beacon_ssd::SsdConfig::paper_default()
                    .with_page_size(w.directgraph().layout().page_size()),
                w.model(),
                w.directgraph(),
                w.seed(),
            )
            .run_with(&mut scratch, w.batches());
            black_box(m.makespan)
        })
    });
    g.finish();
}

fn cascade_replay(c: &mut Criterion) {
    let w = bench_workload();
    let ssd =
        beacon_ssd::SsdConfig::paper_default().with_page_size(w.directgraph().layout().page_size());
    let mut scratch = EngineScratch::new();
    let (_, recording) = Engine::new(Platform::Bg2, ssd, w.model(), w.directgraph(), w.seed())
        .record_cascade(&mut scratch, w.batches());
    let mut g = c.benchmark_group("replay");
    g.bench_function("cascade_replay", |b| {
        b.iter(|| {
            let m = Engine::new(Platform::Bg2, ssd, w.model(), w.directgraph(), w.seed())
                .replay_with(&mut scratch, &recording, w.batches());
            black_box(m.makespan)
        })
    });
    g.finish();
}

fn memo_hit(c: &mut Criterion) {
    let w = Arc::new(bench_workload());
    let mut matrix = RunMatrix::new();
    matrix.push(RunCell::new(Platform::Bg2, Arc::clone(&w)));
    let cache = ReplayCache::in_memory();
    // Seed the memo; every timed pass below is a pure hit (clone).
    let seeded = matrix.run_sequential_with(&cache);
    assert_eq!(seeded.len(), 1);
    let mut g = c.benchmark_group("replay");
    g.bench_function("memo_hit", |b| {
        b.iter(|| {
            let r = matrix.run_sequential_with(&cache);
            black_box(r[0].makespan)
        })
    });
    assert!(
        cache.stats().memo_hits > 0,
        "timed passes must hit the memo"
    );
    g.finish();
}

criterion_group!(benches, full_run, cascade_replay, memo_hit);
criterion_main!(benches);
