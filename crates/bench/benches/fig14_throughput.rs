//! Fig 14 bench: end-to-end platform simulation throughput comparison.

use beacon_bench::bench_workload;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let mut g = c.benchmark_group("fig14_platform_run");
    g.sample_size(10);
    for p in [Platform::Cc, Platform::Bg1, Platform::BgSp, Platform::Bg2] {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| black_box(exp.run(p).throughput()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
