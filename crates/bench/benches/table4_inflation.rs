//! Table IV bench: DirectGraph conversion cost and inflation math.

use beacon_graph::{Dataset, DatasetSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use directgraph::{build::DirectGraphBuilder, AddrLayout};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_directgraph_build");
    g.sample_size(10);
    for dataset in [Dataset::Ogbn, Dataset::Amazon] {
        let spec = DatasetSpec::preset(dataset).at_scale(2_000);
        let graph = spec.build_graph(1);
        let features = spec.build_features(1);
        g.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &dataset,
            |b, _| {
                b.iter(|| {
                    let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
                        .build(&graph, &features)
                        .unwrap();
                    black_box(dg.inflation(&features).inflation_ratio())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
