//! Fig 16 bench: hop-timeline measurement (barrier vs out-of-order).

use beacon_bench::{bench_workload, hop_overlap_fraction};
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let mut g = c.benchmark_group("fig16_hop_timeline");
    g.sample_size(10);
    for p in [Platform::Bg1, Platform::Bg2] {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| {
                let m = exp.run(p);
                black_box(hop_overlap_fraction(&m))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
