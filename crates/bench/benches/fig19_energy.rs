//! Fig 19 bench: energy ledger accounting over a platform run.

use beacon_bench::bench_workload;
use beacon_energy::EnergyCosts;
use beacon_platforms::Platform;
use beacongnn::{Dataset, Experiment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = bench_workload(Dataset::Amazon);
    let exp = Experiment::new(&w);
    let costs = EnergyCosts::default_costs();
    let mut g = c.benchmark_group("fig19_energy");
    g.sample_size(10);
    for p in [Platform::Cc, Platform::Bg1, Platform::Bg2] {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| {
                let m = exp.run(p);
                let bd = m.energy.breakdown(&costs);
                black_box(bd.efficiency(m.targets))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
