//! Golden digests: pins the deterministic outputs that the CI
//! determinism smokes otherwise only check for *self*-consistency
//! (jobs=1 vs jobs=4, cold vs warm cache). These constants are the
//! digests the current implementation produces; any simulation-visible
//! change — event ordering, timing model, sampler draw order, workload
//! synthesis — shifts them and fails here, inside plain `cargo test`,
//! without running the full figure sweep.
//!
//! If a change *intends* to alter simulated results, re-pin the
//! constants from the test failure output and say so in the commit.

use std::sync::Arc;

use beacon_bench as bench;
use beacongnn::{Dataset, Experiment, Platform, RunCell, RunMatrix, SsdConfig, Workload};

/// FNV-1a fold, mirroring `perf_smoke`'s digest of result streams.
fn fnv1a_fold(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Digest of a run-metrics stream, exactly as `perf_smoke` folds its
/// `digest matrix …` / `digest fig18 …` stdout lines.
fn metrics_digest(results: &[beacongnn::RunMetrics]) -> u64 {
    results.iter().fold(FNV_OFFSET, |h, m| {
        let h = fnv1a_fold(h, &m.nodes_visited.to_le_bytes());
        let h = fnv1a_fold(h, &m.flash_reads.to_le_bytes());
        fnv1a_fold(h, &m.makespan.as_ns().to_le_bytes())
    })
}

/// The `digest workload …` line of perf_smoke: the DirectGraph image
/// digest of the fixed smoke workload (Amazon, 8k nodes, batch 128 × 2,
/// seed 7).
#[test]
fn perf_smoke_workload_digest_is_pinned() {
    let w = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(8_000)
        .batch_size(128)
        .batches(2)
        .seed(7)
        .prepare()
        .expect("smoke workload prepares");
    assert_eq!(
        w.directgraph().digest(),
        0x26787abe61d5a557,
        "perf_smoke workload digest drifted"
    );
}

/// The `digest matrix …` line of perf_smoke: the Fig 14 platform ×
/// dataset matrix at smoke scale (4k nodes, batch 64), run sequentially.
#[test]
fn perf_smoke_matrix_digest_is_pinned() {
    let matrix = bench::fig14_matrix(4_000, 64);
    let results = matrix.run_sequential();
    assert_eq!(
        metrics_digest(&results),
        0x08f95fdebcdc17d9,
        "perf_smoke fig14-matrix digest drifted"
    );
}

/// The `digest fig18 …` line of perf_smoke: the controller-core
/// sensitivity matrix (BG chain × core counts) at smoke scale.
#[test]
fn perf_smoke_fig18_digest_is_pinned() {
    let w = bench::workload(Dataset::Amazon, 4_000, 64);
    let mut matrix = RunMatrix::new();
    for &cores in &[1usize, 2, 4, 8] {
        let ssd = SsdConfig::paper_default().with_cores(cores);
        for p in Platform::BG_CHAIN {
            matrix.push(RunCell::new(p, Arc::clone(&w)).ssd(ssd));
        }
    }
    let results = matrix.run_sequential();
    assert_eq!(
        metrics_digest(&results),
        0x1cf7241d101629eb,
        "perf_smoke fig18-matrix digest drifted"
    );
}

/// The per-query latency report on the smoke-scale BG-2 cell: folds the
/// full query stream (latency + per-stage attribution) plus the derived
/// tail percentiles, so both the histogram math and the critical-path
/// split are pinned, not just the aggregate makespan.
#[test]
fn latency_report_digest_is_pinned() {
    let w = bench::workload(Dataset::Amazon, 4_000, 64);
    let m = Experiment::new(&w).run_latency(Platform::Bg2, simkit::Duration::from_ms(1));
    let lat = &m.latency;
    let h = lat.histogram();
    let mut d = FNV_OFFSET;
    d = fnv1a_fold(d, &h.count().to_le_bytes());
    for q in [50, 90, 99] {
        d = fnv1a_fold(d, &h.percentile_ns(q, 100).unwrap_or(0).to_le_bytes());
    }
    d = fnv1a_fold(d, &h.percentile_ns(999, 1000).unwrap_or(0).to_le_bytes());
    d = fnv1a_fold(d, &h.max_ns().unwrap_or(0).to_le_bytes());
    for stage in simkit::Stage::ALL {
        d = fnv1a_fold(d, &lat.stage_total_ns(stage).to_le_bytes());
    }
    for q in lat.queries() {
        d = fnv1a_fold(d, &q.latency_ns().to_le_bytes());
    }
    assert_eq!(d, 0xf3d6_a300_bf3d_1676, "latency report digest drifted");
}

/// The Fig 7b barrier-cost sweep at harness scale — the rows behind the
/// `experiments fig7b` stdout the CI determinism smoke `cmp`s. Folding
/// the raw row values pins the same information as the rendered table
/// without coupling the test to the text formatting.
#[test]
fn fig7b_rows_digest_is_pinned() {
    let rows = bench::fig7b(bench::DEFAULT_NODES);
    let digest = rows.iter().fold(FNV_OFFSET, |h, r| {
        let h = fnv1a_fold(h, &(r.batch_size as u64).to_le_bytes());
        let h = fnv1a_fold(h, &r.barriered_util.to_bits().to_le_bytes());
        let h = fnv1a_fold(h, &r.out_of_order_util.to_bits().to_le_bytes());
        fnv1a_fold(h, &r.prep_inflation.to_bits().to_le_bytes())
    });
    assert_eq!(digest, 0x8edc98599281dc82, "fig7b row digest drifted");
}
