//! Reference host-side GraphSage sampler.
//!
//! The CPU-centric baseline samples neighbors on the host over the CSR
//! graph (paper Fig 1 step 1). This sampler is also the semantic
//! reference that the die-level sampler is cross-checked against: both
//! draw `fanout` neighbors per node per hop, uniformly with
//! replacement.

use beacon_graph::{CsrGraph, NodeId};
use simkit::Xoshiro256StarStar;

use crate::model::GnnModelConfig;
use crate::subgraph::Subgraph;

/// Host-side fanout sampler over a CSR graph.
///
/// # Examples
///
/// ```
/// use beacon_graph::{generate, NodeId};
/// use beacon_gnn::{GnnModelConfig, HostSampler};
///
/// let g = generate::uniform(100, 8, 1);
/// let model = GnnModelConfig::paper_default(64);
/// let mut s = HostSampler::new(model, 7);
/// let sg = s.sample_subgraph(&g, NodeId::new(0));
/// assert_eq!(sg.len() as u64, model.subgraph_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct HostSampler {
    model: GnnModelConfig,
    rng: Xoshiro256StarStar,
    sampled_neighbors: u64,
}

impl HostSampler {
    /// Creates a sampler for `model` with a deterministic seed.
    pub fn new(model: GnnModelConfig, seed: u64) -> Self {
        HostSampler {
            model,
            rng: Xoshiro256StarStar::seeded(seed),
            sampled_neighbors: 0,
        }
    }

    /// The model configuration.
    pub fn model(&self) -> GnnModelConfig {
        self.model
    }

    /// Total neighbors sampled so far.
    pub fn sampled_neighbors(&self) -> u64 {
        self.sampled_neighbors
    }

    /// Samples the k-hop subgraph of `target`.
    ///
    /// Nodes without neighbors truncate their branch (fewer than
    /// `fanout^h` vertices at deeper hops).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in the graph.
    pub fn sample_subgraph(&mut self, graph: &CsrGraph, target: NodeId) -> Subgraph {
        assert!(graph.contains(target), "target {target} not in graph");
        let mut sg = Subgraph::new(target);
        let mut frontier = vec![0usize]; // vertex indices of current hop
        for _hop in 0..self.model.hops {
            let mut next = Vec::with_capacity(frontier.len() * self.model.fanout as usize);
            for &vi in &frontier {
                let node = sg.node_at(vi);
                let deg = graph.degree(node) as u64;
                if deg == 0 {
                    continue;
                }
                for _ in 0..self.model.fanout {
                    let r = self.rng.next_bounded(deg) as usize;
                    let child = graph.neighbors(node)[r];
                    self.sampled_neighbors += 1;
                    next.push(sg.add_child(vi, child));
                }
            }
            frontier = next;
        }
        sg
    }

    /// Samples subgraphs for a whole mini-batch of targets.
    pub fn sample_batch(&mut self, graph: &CsrGraph, targets: &[NodeId]) -> Vec<Subgraph> {
        targets
            .iter()
            .map(|&t| self.sample_subgraph(graph, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::generate;

    #[test]
    fn full_fanout_on_dense_graph() {
        let g = generate::uniform(200, 10, 2);
        let model = GnnModelConfig::paper_default(8);
        let mut s = HostSampler::new(model, 1);
        let sg = s.sample_subgraph(&g, NodeId::new(5));
        assert_eq!(sg.len() as u64, model.subgraph_nodes());
        assert_eq!(sg.depth(), 3);
        assert_eq!(s.sampled_neighbors(), 39);
    }

    #[test]
    fn sampled_children_are_neighbors() {
        let g = generate::uniform(100, 5, 3);
        let mut s = HostSampler::new(GnnModelConfig::paper_default(8), 9);
        let sg = s.sample_subgraph(&g, NodeId::new(0));
        for hop in 1..=3u8 {
            for (vi, node) in sg.at_hop(hop) {
                // Find this vertex's parent by scanning children lists.
                let parent = (0..sg.len())
                    .find(|&p| sg.children_of(p).contains(&vi))
                    .expect("has parent");
                assert!(g.has_edge(sg.node_at(parent), node));
            }
        }
    }

    #[test]
    fn zero_degree_truncates_branch() {
        // Star graph: node 0 -> 1..4; leaves have no out-edges.
        let mut b = beacon_graph::CsrGraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_edge(NodeId::new(0), NodeId::new(i));
        }
        let g = b.build();
        let mut s = HostSampler::new(GnnModelConfig::paper_default(8), 4);
        let sg = s.sample_subgraph(&g, NodeId::new(0));
        // Hop 1 full (3 samples), deeper hops empty.
        assert_eq!(sg.at_hop(1).len(), 3);
        assert_eq!(sg.at_hop(2).len(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generate::uniform(300, 8, 5);
        let model = GnnModelConfig::paper_default(8);
        let a = HostSampler::new(model, 11).sample_subgraph(&g, NodeId::new(7));
        let b = HostSampler::new(model, 11).sample_subgraph(&g, NodeId::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn batch_sampling() {
        let g = generate::uniform(100, 6, 6);
        let mut s = HostSampler::new(GnnModelConfig::paper_default(8), 2);
        let targets: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let sgs = s.sample_batch(&g, &targets);
        assert_eq!(sgs.len(), 4);
        for (sg, t) in sgs.iter().zip(&targets) {
            assert_eq!(sg.target(), *t);
        }
    }
}
