//! # beacon-gnn — the GNN task model (paper §II-A, §VII-A)
//!
//! The functional side of the GNN workload:
//!
//! * [`GnnModelConfig`] — hops, fanout, feature and embedding
//!   dimensions; the paper's model is 3 hops × 3 samples with 128-d
//!   FP-16 embeddings, `vector_sum` aggregation and a perceptron update.
//! * [`sample`] — a reference host-side GraphSage sampler over CSR
//!   graphs (the CPU-centric baseline's data preparation, and the
//!   cross-check for the die-level sampler).
//! * [`Subgraph`] — the k-hop subgraph structure, including
//!   reconstruction from the `(parent, child)` edge stream an in-storage
//!   sampler emits.
//! * [`compute`] — a functional forward pass (aggregate + update) in
//!   f32, plus [`compute::MinibatchWorkload`], the per-batch GEMM and
//!   reduction shapes handed to an accelerator timing model.

pub mod compute;
pub mod model;
pub mod sample;
pub mod subgraph;

pub use compute::{Aggregation, GnnForward, MinibatchWorkload};
pub use model::GnnModelConfig;
pub use sample::HostSampler;
pub use subgraph::Subgraph;
