//! K-hop subgraph structure and reconstruction.
//!
//! An in-storage sampler does not return an adjacency structure; it
//! streams `(parent, child, hop)` visit records (the "batch id, last
//! node id, current node id" metadata of §VI-D). [`Subgraph`] rebuilds
//! the sampled tree from that stream and exposes the per-hop node sets
//! the compute stage consumes.

use beacon_graph::NodeId;

/// One sampled k-hop subgraph, rooted at a mini-batch target.
///
/// Nodes may repeat (sampling with replacement, and diamond paths); each
/// occurrence is its own tree vertex, matching how the aggregation
/// actually computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgraph {
    target: NodeId,
    /// Tree vertices: `(node, hop, parent_index)`; parent of the root is
    /// `usize::MAX`.
    vertices: Vec<(NodeId, u8, usize)>,
}

/// A visit record streamed back from a sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitRecord {
    /// The node visited.
    pub node: NodeId,
    /// Its hop distance from the target.
    pub hop: u8,
    /// The parent node it was sampled from (`None` for the target).
    pub parent: Option<NodeId>,
}

impl Subgraph {
    /// Sentinel parent index of the root vertex.
    pub const ROOT_PARENT: usize = usize::MAX;

    /// Creates a subgraph containing only the target.
    pub fn new(target: NodeId) -> Self {
        Subgraph {
            target,
            vertices: vec![(target, 0, Self::ROOT_PARENT)],
        }
    }

    /// Reconstructs a subgraph from a visit-record stream.
    ///
    /// Records may arrive out of order across hops (BeaconGNN's whole
    /// point); each child attaches to the most recent matching parent
    /// occurrence at `hop - 1` that still wants children. Returns `None`
    /// if the stream contains no root record or a child references a
    /// parent never visited.
    pub fn reconstruct(records: &[VisitRecord]) -> Option<Self> {
        let root = records.iter().find(|r| r.parent.is_none())?;
        let mut sg = Subgraph::new(root.node);
        for r in records {
            if r.parent.is_none() {
                continue;
            }
            let parent_node = r.parent.expect("checked");
            let parent_idx = sg
                .vertices
                .iter()
                .position(|&(n, h, _)| n == parent_node && h + 1 == r.hop)?;
            sg.vertices.push((r.node, r.hop, parent_idx));
        }
        Some(sg)
    }

    /// The mini-batch target this subgraph is rooted at.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Adds a sampled child under the vertex at `parent_index`.
    ///
    /// # Panics
    ///
    /// Panics if `parent_index` is out of range.
    pub fn add_child(&mut self, parent_index: usize, node: NodeId) -> usize {
        let (_, parent_hop, _) = self.vertices[parent_index];
        self.vertices.push((node, parent_hop + 1, parent_index));
        self.vertices.len() - 1
    }

    /// Total tree vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` if only the target is present.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() == 1
    }

    /// Vertices at hop `h`, as `(vertex_index, node)`.
    pub fn at_hop(&self, h: u8) -> Vec<(usize, NodeId)> {
        self.iter_at_hop(h).collect()
    }

    /// Iterates `(vertex index, node)` pairs at hop `h` without
    /// allocating (the hot-path form of [`Subgraph::at_hop`]).
    pub fn iter_at_hop(&self, h: u8) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |(_, &(_, hop, _))| hop == h)
            .map(|(i, &(n, _, _))| (i, n))
    }

    /// Children vertex indices of the vertex at `index`.
    pub fn children_of(&self, index: usize) -> Vec<usize> {
        self.iter_children_of(index).collect()
    }

    /// Iterates the vertex indices sampled from `index` without
    /// allocating (the hot-path form of [`Subgraph::children_of`]).
    pub fn iter_children_of(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |(_, &(_, _, p))| p == index)
            .map(|(i, _)| i)
    }

    /// The node at vertex `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(&self, index: usize) -> NodeId {
        self.vertices[index].0
    }

    /// Maximum hop present.
    pub fn depth(&self) -> u8 {
        self.vertices.iter().map(|&(_, h, _)| h).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn manual_construction() {
        let mut sg = Subgraph::new(v(0));
        let a = sg.add_child(0, v(1));
        let b = sg.add_child(0, v(2));
        sg.add_child(a, v(3));
        assert_eq!(sg.len(), 4);
        assert_eq!(sg.depth(), 2);
        assert_eq!(sg.at_hop(1).len(), 2);
        assert_eq!(sg.children_of(0), vec![a, b]);
        assert_eq!(sg.node_at(a), v(1));
        assert!(!sg.is_empty());
    }

    #[test]
    fn reconstruct_in_order() {
        let records = [
            VisitRecord {
                node: v(0),
                hop: 0,
                parent: None,
            },
            VisitRecord {
                node: v(1),
                hop: 1,
                parent: Some(v(0)),
            },
            VisitRecord {
                node: v(2),
                hop: 1,
                parent: Some(v(0)),
            },
            VisitRecord {
                node: v(5),
                hop: 2,
                parent: Some(v(1)),
            },
        ];
        let sg = Subgraph::reconstruct(&records).unwrap();
        assert_eq!(sg.target(), v(0));
        assert_eq!(sg.len(), 4);
        assert_eq!(sg.at_hop(2), vec![(3, v(5))]);
    }

    #[test]
    fn reconstruct_out_of_order_hops() {
        // Hop-2 record arrives before its sibling hop-1 record —
        // the out-of-order stream BeaconGNN produces.
        let records = [
            VisitRecord {
                node: v(0),
                hop: 0,
                parent: None,
            },
            VisitRecord {
                node: v(1),
                hop: 1,
                parent: Some(v(0)),
            },
            VisitRecord {
                node: v(9),
                hop: 2,
                parent: Some(v(1)),
            },
            VisitRecord {
                node: v(2),
                hop: 1,
                parent: Some(v(0)),
            },
        ];
        let sg = Subgraph::reconstruct(&records).unwrap();
        assert_eq!(sg.len(), 4);
        assert_eq!(sg.at_hop(1).len(), 2);
        assert_eq!(sg.at_hop(2).len(), 1);
    }

    #[test]
    fn reconstruct_missing_root_fails() {
        let records = [VisitRecord {
            node: v(1),
            hop: 1,
            parent: Some(v(0)),
        }];
        assert_eq!(Subgraph::reconstruct(&records), None);
    }

    #[test]
    fn reconstruct_orphan_child_fails() {
        let records = [
            VisitRecord {
                node: v(0),
                hop: 0,
                parent: None,
            },
            VisitRecord {
                node: v(5),
                hop: 2,
                parent: Some(v(7)),
            },
        ];
        assert_eq!(Subgraph::reconstruct(&records), None);
    }

    #[test]
    fn duplicate_nodes_are_separate_vertices() {
        let mut sg = Subgraph::new(v(0));
        sg.add_child(0, v(1));
        sg.add_child(0, v(1)); // sampled twice (with replacement)
        assert_eq!(sg.len(), 3);
        assert_eq!(sg.at_hop(1).len(), 2);
    }
}
