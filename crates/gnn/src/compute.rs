//! GNN computation: functional forward pass + accelerator workload model.
//!
//! The paper's computation stage (§II-A, Eq. 1) uses `vector_sum`
//! aggregation and a perceptron update per layer. [`GnnForward`] runs
//! that computation functionally in f32 on a sampled [`Subgraph`];
//! [`MinibatchWorkload`] describes the same computation as the GEMM and
//! reduction shapes an accelerator timing model prices.

use beacon_accel::AcceleratorConfig;
use beacon_graph::FeatureTable;
use simkit::{Duration, SplitMix64};

use crate::model::GnnModelConfig;
use crate::subgraph::Subgraph;

/// The neighborhood aggregation function (Eq. 1's AGGREGATE).
///
/// The paper's evaluation uses `vector_sum`; mean and element-wise max
/// are the other standard GraphSage aggregators and exercise the same
/// vector-array hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggregation {
    /// Element-wise sum of self + children (the paper's choice).
    #[default]
    Sum,
    /// Element-wise mean over self + children.
    Mean,
    /// Element-wise maximum over self + children.
    Max,
}

/// A functional GraphSage-style forward pass with synthetic weights.
///
/// # Examples
///
/// ```
/// use beacon_graph::{generate, FeatureTable, NodeId};
/// use beacon_gnn::{GnnForward, GnnModelConfig, HostSampler};
///
/// let g = generate::uniform(100, 8, 1);
/// let x = FeatureTable::synthetic(100, 16, 1);
/// let model = GnnModelConfig::paper_default(16);
/// let sg = HostSampler::new(model, 3).sample_subgraph(&g, NodeId::new(0));
/// let out = GnnForward::new(model, 9).forward(&sg, &x);
/// assert_eq!(out.len(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct GnnForward {
    model: GnnModelConfig,
    aggregation: Aggregation,
    /// Row-major `in_dim × hidden` weights per layer.
    weights: Vec<Vec<f32>>,
}

impl GnnForward {
    /// Creates a forward pass with deterministic synthetic weights and
    /// the paper's `vector_sum` aggregation.
    pub fn new(model: GnnModelConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x6E6E);
        let weights = (1..=model.hops)
            .map(|layer| {
                let in_dim = model.layer_input_dim(layer);
                // Scaled init keeps activations bounded across layers.
                let scale = (1.0 / in_dim as f64).sqrt() as f32;
                (0..in_dim * model.hidden_dim)
                    .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32 * scale)
                    .collect()
            })
            .collect();
        GnnForward {
            model,
            aggregation: Aggregation::Sum,
            weights,
        }
    }

    /// Selects a different aggregation function.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// The aggregation function in use.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// The model configuration.
    pub fn model(&self) -> GnnModelConfig {
        self.model
    }

    /// Runs the forward pass on one subgraph, returning the target's
    /// final embedding (`hidden_dim` values).
    ///
    /// # Panics
    ///
    /// Panics if the subgraph is deeper than the model's hop count or
    /// the feature table's dimension mismatches the model.
    pub fn forward(&self, sg: &Subgraph, features: &FeatureTable) -> Vec<f32> {
        assert!(sg.depth() <= self.model.hops, "subgraph deeper than model");
        assert_eq!(
            features.dim(),
            self.model.feature_dim,
            "feature dim mismatch"
        );
        let hidden = self.model.hidden_dim;
        // Embeddings live in two flat row-major buffers that swap roles
        // each layer; one aggregation buffer is reused across all nodes
        // and hops. Summation order is identical to the per-node-vector
        // formulation, so results are bit-identical — only the
        // allocation pattern changes (4 buffers per call instead of
        // O(nodes × layers)).
        let mut cur_dim = self.model.feature_dim;
        let mut cur: Vec<f32> = Vec::with_capacity(sg.len() * cur_dim.max(hidden));
        for vi in 0..sg.len() {
            cur.extend_from_slice(features.feature(sg.node_at(vi)));
        }
        let mut nxt: Vec<f32> = vec![0.0; sg.len() * hidden];
        let mut agg: Vec<f32> = Vec::with_capacity(cur_dim.max(hidden));
        for layer in 1..=self.model.hops {
            let w = &self.weights[(layer - 1) as usize];
            let in_dim = self.model.layer_input_dim(layer);
            let keep_hops = self.model.hops - layer;
            for hop in 0..=keep_hops {
                for (vi, _) in sg.iter_at_hop(hop) {
                    // AGGREGATE over self + children. Children were all
                    // updated in the previous layer (hop + 1 ≤ previous
                    // keep_hops), so their rows in `cur` are live.
                    agg.clear();
                    agg.extend_from_slice(&cur[vi * cur_dim..(vi + 1) * cur_dim]);
                    match self.aggregation {
                        Aggregation::Sum | Aggregation::Mean => {
                            let mut k = 1.0f32;
                            for ci in sg.iter_children_of(vi) {
                                add_assign(&mut agg, &cur[ci * cur_dim..(ci + 1) * cur_dim]);
                                k += 1.0;
                            }
                            if self.aggregation == Aggregation::Mean {
                                for a in &mut agg {
                                    *a /= k;
                                }
                            }
                        }
                        Aggregation::Max => {
                            for ci in sg.iter_children_of(vi) {
                                max_assign(&mut agg, &cur[ci * cur_dim..(ci + 1) * cur_dim]);
                            }
                        }
                    }
                    debug_assert_eq!(agg.len(), in_dim);
                    // UPDATE: perceptron (W'agg, ReLU). Weight rows are
                    // walked contiguously (row-major, row per input).
                    let out = &mut nxt[vi * hidden..(vi + 1) * hidden];
                    out.fill(0.0);
                    for (i, &x) in agg.iter().enumerate() {
                        if x == 0.0 {
                            continue;
                        }
                        axpy(out, x, &w[i * hidden..(i + 1) * hidden]);
                    }
                    for o in out.iter_mut() {
                        *o = o.max(0.0);
                    }
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
            cur_dim = hidden;
            // `nxt` (last layer's inputs) becomes next layer's output
            // buffer; rows are overwritten before any read.
            nxt.resize(sg.len() * hidden, 0.0);
        }
        cur[..cur_dim].to_vec()
    }
}

// Element-wise kernels of the forward pass, unrolled 8 wide through
// `chunks_exact` so the compiler sees fixed-length bodies it can keep
// in vector registers even when it cannot infer the slice lengths —
// wide enough for one AVX2 f32 vector per iteration. Each output
// element still sees exactly the operations of the naive zip loop, in
// the same order — no reassociation — so results stay bit-identical.

/// `dst[i] += src[i]` over the common prefix (Eq. 1's vector_sum step).
#[inline]
fn add_assign(dst: &mut [f32], src: &[f32]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (d8, s8) in d.by_ref().zip(s.by_ref()) {
        for i in 0..8 {
            d8[i] += s8[i];
        }
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a += b;
    }
}

/// `dst[i] = max(dst[i], src[i])` over the common prefix.
#[inline]
fn max_assign(dst: &mut [f32], src: &[f32]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (d8, s8) in d.by_ref().zip(s.by_ref()) {
        for i in 0..8 {
            d8[i] = d8[i].max(s8[i]);
        }
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a = a.max(*b);
    }
}

/// `dst[i] += x * row[i]` over the common prefix (one weight row of the
/// perceptron update).
#[inline]
fn axpy(dst: &mut [f32], x: f32, row: &[f32]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut r = row.chunks_exact(8);
    for (d8, r8) in d.by_ref().zip(r.by_ref()) {
        for i in 0..8 {
            d8[i] += x * r8[i];
        }
    }
    for (o, &wv) in d.into_remainder().iter_mut().zip(r.remainder()) {
        *o += x * wv;
    }
}

/// The accelerator workload of one mini-batch's computation stage:
/// per-layer reduction and GEMM shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinibatchWorkload {
    model: GnnModelConfig,
    batch_size: u64,
    training: bool,
}

impl MinibatchWorkload {
    /// Describes the *inference* computation (forward pass only) of
    /// `batch_size` subgraphs of `model`.
    pub fn new(model: GnnModelConfig, batch_size: u64) -> Self {
        MinibatchWorkload {
            model,
            batch_size,
            training: false,
        }
    }

    /// Switches to *training* workload shapes: forward pass plus the
    /// backward pass (per layer: a weight-gradient GEMM and an
    /// input-gradient GEMM, roughly tripling GEMM work — the standard
    /// backprop factor). The paper's experiments run GNN training.
    pub fn with_training(mut self, training: bool) -> Self {
        self.training = training;
        self
    }

    /// Whether backward-pass work is included.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Per-layer `(vectors_to_reduce, reduce_dim, gemm_m, gemm_k,
    /// gemm_n)` shapes, layer 1 first. Training appends, per layer, the
    /// weight-gradient GEMM `(in_dim × m × hidden)` and the
    /// input-gradient GEMM `(m × hidden × in_dim)`, plus the gradient
    /// scatter (mirrors the forward reduction).
    pub fn layer_shapes(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut shapes = Vec::new();
        for layer in 1..=self.model.hops {
            let nodes = self.model.nodes_updated_at_layer(layer) * self.batch_size;
            let in_dim = self.model.layer_input_dim(layer) as u64;
            let hidden = self.model.hidden_dim as u64;
            // Each updated node reduces itself + fanout children.
            let vectors = nodes * (self.model.fanout as u64 + 1);
            shapes.push((vectors, in_dim, nodes, in_dim, hidden));
            if self.training {
                // dW = X^T · dY  (in_dim × nodes × hidden).
                shapes.push((0, 0, in_dim, nodes, hidden));
                // dX = dY · W^T  (nodes × hidden × in_dim), plus the
                // gradient scatter back to children.
                shapes.push((vectors, in_dim, nodes, hidden, in_dim));
            }
        }
        shapes
    }

    /// Total multiply-accumulates of the batch (for energy accounting).
    pub fn total_macs(&self) -> u64 {
        self.layer_shapes()
            .iter()
            .map(|&(_, _, m, k, n)| m * k * n)
            .sum()
    }

    /// Total reduction element-additions of the batch.
    pub fn total_reduce_ops(&self) -> u64 {
        self.layer_shapes()
            .iter()
            .map(|&(v, d, m, _, _)| v.saturating_sub(m) * d)
            .sum()
    }

    /// Bytes staged through DRAM for the batch: input features, weights,
    /// and inter-layer embeddings at FP-16.
    pub fn dram_traffic_bytes(&self) -> u64 {
        let feats =
            self.batch_size * self.model.subgraph_nodes() * self.model.feature_bytes() as u64;
        let weights: u64 = (1..=self.model.hops)
            .map(|l| (self.model.layer_input_dim(l) * self.model.hidden_dim) as u64 * 2)
            .sum();
        let inter: u64 = self
            .layer_shapes()
            .iter()
            .map(|&(_, _, m, _, n)| m * n * 2)
            .sum();
        feats + weights + inter
    }

    /// Wall time of the batch's computation on `accel`, layers run
    /// back-to-back (aggregation then update per layer).
    ///
    /// Each layer is bounded by the larger of its arithmetic time
    /// (reductions on the vector array + GEMMs on the systolic array)
    /// and its *layer-level* feed time: activations stream through the
    /// accelerator SRAM once per layer — weights and intermediates are
    /// SRAM-resident across the layer's forward/backward GEMMs, so the
    /// floor counts unique activation/gradient bytes, not per-GEMM
    /// operands.
    pub fn compute_time(&self, accel: &AcceleratorConfig) -> Duration {
        let hidden = self.model.hidden_dim as u64;
        (1..=self.model.hops)
            .map(|layer| {
                let nodes = self.model.nodes_updated_at_layer(layer) * self.batch_size;
                let in_dim = self.model.layer_input_dim(layer) as u64;
                let vectors = nodes * (self.model.fanout as u64 + 1);
                // Arithmetic: aggregation + update (+ backward GEMMs and
                // gradient scatter under training).
                let mut arith = accel.vector.reduce_time(vectors, in_dim)
                    + accel.systolic.gemm_time(nodes, in_dim, hidden);
                if self.training {
                    arith += accel.systolic.gemm_time(in_dim, nodes, hidden)
                        + accel.systolic.gemm_time(nodes, hidden, in_dim)
                        + accel.vector.reduce_time(vectors, in_dim);
                }
                // Feed floor: activations in (aggregated inputs) and
                // embeddings out, FP16; training adds the gradient
                // streams in the opposite direction.
                let dirs = if self.training { 2 } else { 1 };
                let bytes = dirs * 2 * (nodes * in_dim + nodes * hidden);
                let feed = Duration::from_bytes_at_bandwidth(bytes.max(1), accel.feed_bandwidth);
                arith.max(feed)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::HostSampler;
    use beacon_graph::{generate, NodeId};

    fn setup(dim: usize) -> (beacon_graph::CsrGraph, FeatureTable, GnnModelConfig) {
        let g = generate::uniform(120, 6, 4);
        let x = FeatureTable::synthetic(120, dim, 4);
        (g, x, GnnModelConfig::paper_default(dim))
    }

    #[test]
    fn forward_produces_hidden_dim() {
        let (g, x, model) = setup(16);
        let sg = HostSampler::new(model, 1).sample_subgraph(&g, NodeId::new(3));
        let out = GnnForward::new(model, 2).forward(&sg, &x);
        assert_eq!(out.len(), 128);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(
            out.iter().all(|&v| v >= 0.0),
            "ReLU output must be nonnegative"
        );
        assert!(
            out.iter().any(|&v| v > 0.0),
            "embedding should not be all-zero"
        );
    }

    #[test]
    fn aggregation_variants_differ_but_stay_finite() {
        let (g, x, model) = setup(16);
        let sg = HostSampler::new(model, 8).sample_subgraph(&g, NodeId::new(9));
        let outs: Vec<Vec<f32>> = [Aggregation::Sum, Aggregation::Mean, Aggregation::Max]
            .into_iter()
            .map(|agg| {
                GnnForward::new(model, 3)
                    .with_aggregation(agg)
                    .forward(&sg, &x)
            })
            .collect();
        for o in &outs {
            assert!(o.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        assert_ne!(outs[0], outs[1], "sum vs mean");
        assert_ne!(outs[0], outs[2], "sum vs max");
        // Mean-aggregated activations are bounded by sum-aggregated
        // magnitude (same weights, smaller inputs).
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm(&outs[1]) <= norm(&outs[0]) + 1e-3);
        assert_eq!(
            GnnForward::new(model, 3)
                .with_aggregation(Aggregation::Max)
                .aggregation(),
            Aggregation::Max
        );
    }

    #[test]
    fn forward_is_deterministic() {
        let (g, x, model) = setup(16);
        let sg = HostSampler::new(model, 5).sample_subgraph(&g, NodeId::new(7));
        let a = GnnForward::new(model, 3).forward(&sg, &x);
        let b = GnnForward::new(model, 3).forward(&sg, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn different_subgraphs_give_different_embeddings() {
        let (g, x, model) = setup(16);
        let mut s = HostSampler::new(model, 6);
        let sg1 = s.sample_subgraph(&g, NodeId::new(1));
        let sg2 = s.sample_subgraph(&g, NodeId::new(2));
        let f = GnnForward::new(model, 3);
        assert_ne!(f.forward(&sg1, &x), f.forward(&sg2, &x));
    }

    #[test]
    fn training_roughly_triples_macs() {
        let model = GnnModelConfig::paper_default(200);
        let infer = MinibatchWorkload::new(model, 64);
        let train = MinibatchWorkload::new(model, 64).with_training(true);
        assert!(!infer.is_training());
        assert!(train.is_training());
        let ratio = train.total_macs() as f64 / infer.total_macs() as f64;
        assert!((2.9..=3.1).contains(&ratio), "backprop factor {ratio}");
        // Training also costs more time on the same accelerator (at
        // least the 2x feed floor; up to 3x when arithmetic-bound).
        let accel = AcceleratorConfig::ssd_internal();
        let t = train.compute_time(&accel).as_ns() as f64;
        let i = infer.compute_time(&accel).as_ns() as f64;
        assert!(t / i >= 1.8, "training/inference compute ratio {}", t / i);
    }

    #[test]
    fn workload_shapes_match_model() {
        let model = GnnModelConfig::paper_default(200);
        let w = MinibatchWorkload::new(model, 256);
        let shapes = w.layer_shapes();
        assert_eq!(shapes.len(), 3);
        // Layer 1: 13 nodes x 256 targets, k=200 features, n=128.
        assert_eq!(shapes[0], (13 * 256 * 4, 200, 13 * 256, 200, 128));
        // Layer 2: 4 nodes, hidden->hidden.
        assert_eq!(shapes[1].2, 4 * 256);
        assert_eq!(shapes[1].3, 128);
    }

    #[test]
    fn compute_time_positive_and_scales() {
        let model = GnnModelConfig::paper_default(200);
        let accel = AcceleratorConfig::ssd_internal();
        let t64 = MinibatchWorkload::new(model, 64).compute_time(&accel);
        let t256 = MinibatchWorkload::new(model, 256).compute_time(&accel);
        assert!(t64 > Duration::ZERO);
        assert!(t256 > t64 * 3, "compute should scale ~linearly with batch");
    }

    #[test]
    fn macs_and_traffic_accounting() {
        let model = GnnModelConfig::paper_default(100);
        let w = MinibatchWorkload::new(model, 1);
        let expect_macs = 13 * 100 * 128 + 4 * 128 * 128 + 128 * 128;
        assert_eq!(w.total_macs(), expect_macs);
        assert!(w.total_reduce_ops() > 0);
        assert!(w.dram_traffic_bytes() > 40 * 200); // at least the features
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn wrong_feature_dim_panics() {
        let (g, _, model) = setup(16);
        let wrong = FeatureTable::synthetic(120, 8, 1);
        let sg = HostSampler::new(model, 1).sample_subgraph(&g, NodeId::new(0));
        GnnForward::new(model, 1).forward(&sg, &wrong);
    }
}
