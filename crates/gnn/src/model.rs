//! GNN model configuration.

/// The GNN model shape used across the evaluation.
///
/// The paper's model (§VII-A): 3-hop subgraphs with 3 neighbors sampled
/// per node (40 nodes per target), `vector_sum` aggregation, a
/// perceptron for embedding updates, and 128-dimensional FP-16
/// intermediate embeddings.
///
/// # Examples
///
/// ```
/// use beacon_gnn::GnnModelConfig;
/// let m = GnnModelConfig::paper_default(602);
/// assert_eq!(m.subgraph_nodes(), 40);
/// assert_eq!(m.nodes_at_hop(3), 27);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GnnModelConfig {
    /// Sampling hops `k`.
    pub hops: u8,
    /// Neighbors sampled per node per hop.
    pub fanout: u16,
    /// Input feature dimensionality.
    pub feature_dim: usize,
    /// Hidden/output embedding dimensionality.
    pub hidden_dim: usize,
}

impl GnnModelConfig {
    /// The paper's 3×3 model with 128-d embeddings.
    pub fn paper_default(feature_dim: usize) -> Self {
        GnnModelConfig {
            hops: 3,
            fanout: 3,
            feature_dim,
            hidden_dim: 128,
        }
    }

    /// Nodes at hop `h` of one subgraph (`fanout^h`).
    pub fn nodes_at_hop(&self, h: u8) -> u64 {
        (self.fanout as u64).pow(h as u32)
    }

    /// Total nodes in one subgraph (`Σ fanout^h` for `h = 0..=hops`).
    pub fn subgraph_nodes(&self) -> u64 {
        (0..=self.hops).map(|h| self.nodes_at_hop(h)).sum()
    }

    /// Sampling edges in one subgraph (`subgraph_nodes - 1`).
    pub fn subgraph_edges(&self) -> u64 {
        self.subgraph_nodes() - 1
    }

    /// Nodes that layer `layer` (1-based) updates: every node within
    /// `hops - layer` hops of the target still needs an embedding after
    /// this layer.
    pub fn nodes_updated_at_layer(&self, layer: u8) -> u64 {
        assert!(layer >= 1 && layer <= self.hops, "layer out of range");
        (0..=(self.hops - layer))
            .map(|h| self.nodes_at_hop(h))
            .sum()
    }

    /// Input dimensionality of layer `layer` (1-based): features for the
    /// first layer, hidden width after.
    pub fn layer_input_dim(&self, layer: u8) -> usize {
        if layer == 1 {
            self.feature_dim
        } else {
            self.hidden_dim
        }
    }

    /// Bytes of one FP-16 feature vector.
    pub fn feature_bytes(&self) -> usize {
        self.feature_dim * 2
    }

    /// Bytes of one FP-16 hidden embedding.
    pub fn hidden_bytes(&self) -> usize {
        self.hidden_dim * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let m = GnnModelConfig::paper_default(200);
        assert_eq!(m.subgraph_nodes(), 40); // 1 + 3 + 9 + 27
        assert_eq!(m.subgraph_edges(), 39);
        assert_eq!(m.nodes_at_hop(0), 1);
        assert_eq!(m.nodes_at_hop(2), 9);
    }

    #[test]
    fn layer_node_counts_shrink() {
        let m = GnnModelConfig::paper_default(200);
        // Layer 1 updates nodes within 2 hops: 1+3+9 = 13.
        assert_eq!(m.nodes_updated_at_layer(1), 13);
        assert_eq!(m.nodes_updated_at_layer(2), 4);
        assert_eq!(m.nodes_updated_at_layer(3), 1);
    }

    #[test]
    fn layer_dims() {
        let m = GnnModelConfig::paper_default(602);
        assert_eq!(m.layer_input_dim(1), 602);
        assert_eq!(m.layer_input_dim(2), 128);
        assert_eq!(m.feature_bytes(), 1204);
        assert_eq!(m.hidden_bytes(), 256);
    }

    #[test]
    #[should_panic(expected = "layer out of range")]
    fn layer_zero_rejected() {
        GnnModelConfig::paper_default(8).nodes_updated_at_layer(0);
    }
}
