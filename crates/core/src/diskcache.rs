//! Persistent on-disk workload cache.
//!
//! Preparing a workload — synthesizing the graph and features, encoding
//! the DirectGraph image — is the dominant cost of starting any
//! experiment process, and it repeats identically in every process that
//! sweeps the same dataset. This module persists fully prepared
//! [`Workload`]s keyed by [`WorkloadBuilder::fingerprint`] so a second
//! process (or a second `cargo test` binary) deserializes in
//! milliseconds instead of rebuilding.
//!
//! File layout (little-endian), one file per fingerprint:
//!
//! ```text
//! magic   "BWC1"                         4 B
//! format_version                         u32
//! fingerprint echo                       u64 len + bytes
//! seed                                   u64
//! model: hops u8, fanout u16,
//!        feature_dim u64, hidden_dim u64
//! dataset name                           u64 len + bytes
//! spec scale (num_nodes)                 u64
//! batches: count, then per batch         u64 len + u32 node ids
//! graph: offsets (u64 len + u64s),
//!        adjacency (u64 len + u32s)
//! features: dim u64, values u64 len + f32 bits
//! DirectGraph                            embedded `DirectGraph::save` stream
//! checksum                               u64 FNV-1a over everything after magic
//! ```
//!
//! **Validation and fallback.** A load is served only if the magic,
//! format version, checksum, and fingerprint echo all match and every
//! embedded structure parses; any mismatch — truncation, corruption, a
//! cache written by an incompatible build — returns `None` and the
//! caller rebuilds from scratch. Nothing in the cache is trusted
//! without the checksum.
//!
//! **Invalidation rule.** [`FORMAT_VERSION`] must be bumped whenever
//! the *meaning* of a fingerprint changes: generator stream layout,
//! feature synthesis, DirectGraph placement, mini-batch drawing, or
//! this container format itself. The fingerprint captures builder
//! parameters, not code — the version captures the code.
//!
//! **Location.** The `BEACON_WORKLOAD_CACHE` environment variable picks
//! the directory; `0`, `off`, or empty disables persistence entirely;
//! unset defaults to `target/workload-cache` in the workspace. Writes
//! go to a temp file and are atomically renamed into place, so
//! concurrent processes never observe partial files.
//!
//! **Cascade recordings.** The same directory also holds `brc1-` files:
//! serialized [`CascadeRecording`]s keyed by the record/replay cache
//! (see [`crate::replaycache`]), in an identical container (magic
//! `BRC1`, the shared [`FORMAT_VERSION`], key echo, checksum, atomic
//! publish). Workloads and the cascades recorded from them invalidate
//! together.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use beacon_gnn::GnnModelConfig;
use beacon_graph::{CsrGraph, Dataset, DatasetSpec, FeatureTable, NodeId};
use beacon_platforms::CascadeRecording;
use directgraph::DirectGraph;

use crate::workload::Workload;

const MAGIC: &[u8; 4] = b"BWC1";
const RECORDING_MAGIC: &[u8; 4] = b"BRC1";

/// Container+pipeline version; see the module docs for the bump rule.
pub const FORMAT_VERSION: u32 = 1;

static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime disk-cache traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCacheStats {
    /// Loads served from a valid cache file.
    pub hits: u64,
    /// Lookups that fell through to a fresh build (missing, disabled,
    /// or invalid file).
    pub misses: u64,
}

/// Returns the hit/miss counters accumulated by this process.
pub fn stats() -> DiskCacheStats {
    DiskCacheStats {
        hits: DISK_HITS.load(Ordering::Relaxed),
        misses: DISK_MISSES.load(Ordering::Relaxed),
    }
}

/// Resolves the cache directory from the environment: an explicit path
/// from `BEACON_WORKLOAD_CACHE`, `None` when disabled (`0`, `off`, or
/// empty), or the workspace-local default when unset.
pub(crate) fn default_dir() -> Option<PathBuf> {
    match std::env::var("BEACON_WORKLOAD_CACHE") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
                None
            } else {
                Some(PathBuf::from(v))
            }
        }
        Err(_) => Some(PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/workload-cache"
        ))),
    }
}

/// The cache file path for a fingerprint inside `dir`.
pub(crate) fn file_path(dir: &Path, fingerprint: &str) -> PathBuf {
    dir.join(format!("bwc1-{:016x}.bin", fnv1a(fingerprint.as_bytes())))
}

/// Attempts to load the workload for `fingerprint` from `dir`.
///
/// Returns `None` — after counting a miss — on any validation failure,
/// so callers can always fall back to a fresh build.
pub(crate) fn load(dir: &Path, fingerprint: &str) -> Option<Workload> {
    let result = try_load(&file_path(dir, fingerprint), fingerprint);
    match &result {
        Some(_) => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            simkit::profile::count("workload/disk_cache_hit", 1);
        }
        None => {
            DISK_MISSES.fetch_add(1, Ordering::Relaxed);
            simkit::profile::count("workload/disk_cache_miss", 1);
        }
    }
    result
}

/// Best-effort save of `workload` under `fingerprint` in `dir`. I/O
/// failures are swallowed: a cache that cannot be written only costs
/// the next process a rebuild.
pub(crate) fn save(dir: &Path, fingerprint: &str, workload: &Workload) {
    let _ = try_save(dir, fingerprint, workload);
}

fn try_save(dir: &Path, fingerprint: &str, w: &Workload) -> std::io::Result<()> {
    let _p = simkit::profile::phase("workload/disk_cache_save");
    let mut payload = Vec::new();
    payload.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    put_bytes(&mut payload, fingerprint.as_bytes());
    payload.extend_from_slice(&w.seed().to_le_bytes());
    let m = w.model();
    payload.push(m.hops);
    payload.extend_from_slice(&m.fanout.to_le_bytes());
    payload.extend_from_slice(&(m.feature_dim as u64).to_le_bytes());
    payload.extend_from_slice(&(m.hidden_dim as u64).to_le_bytes());
    put_bytes(&mut payload, w.spec().dataset.name().as_bytes());
    payload.extend_from_slice(&(w.spec().num_nodes as u64).to_le_bytes());
    payload.extend_from_slice(&(w.batches().len() as u64).to_le_bytes());
    for batch in w.batches() {
        payload.extend_from_slice(&(batch.len() as u64).to_le_bytes());
        for v in batch {
            payload.extend_from_slice(&v.as_u32().to_le_bytes());
        }
    }
    let g = w.graph();
    payload.extend_from_slice(&(g.offsets().len() as u64).to_le_bytes());
    for &o in g.offsets() {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    payload.extend_from_slice(&(g.adjacency().len() as u64).to_le_bytes());
    for &v in g.adjacency() {
        payload.extend_from_slice(&v.as_u32().to_le_bytes());
    }
    let f = w.features();
    payload.extend_from_slice(&(f.dim() as u64).to_le_bytes());
    payload.extend_from_slice(&(f.values().len() as u64).to_le_bytes());
    for &x in f.values() {
        payload.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    w.directgraph().save(&mut payload)?;

    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        "tmp-{}-{:016x}",
        std::process::id(),
        fnv1a(fingerprint.as_bytes())
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&payload)?;
        file.write_all(&fnv1a(&payload).to_le_bytes())?;
        file.sync_all()?;
    }
    // Atomic publish: readers see either the old file or the complete
    // new one, never a partial write.
    let result = std::fs::rename(&tmp, file_path(dir, fingerprint));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn try_load(path: &Path, fingerprint: &str) -> Option<Workload> {
    let _p = simkit::profile::phase("workload/disk_cache_load");
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (payload, tail) = bytes[MAGIC.len()..].split_at(bytes.len() - MAGIC.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(payload) != stored {
        return None;
    }

    let mut cur = Cursor { buf: payload };
    if cur.u32()? != FORMAT_VERSION {
        return None;
    }
    if cur.bytes()? != fingerprint.as_bytes() {
        return None;
    }
    let seed = cur.u64()?;
    let model = GnnModelConfig {
        hops: cur.u8()?,
        fanout: cur.u16()?,
        feature_dim: cur.u64()? as usize,
        hidden_dim: cur.u64()? as usize,
    };
    let name = cur.bytes()?.to_vec();
    let dataset = *Dataset::ALL
        .iter()
        .find(|d| d.name().as_bytes() == name.as_slice())?;
    let num_nodes = cur.u64()? as usize;
    let spec = DatasetSpec::preset(dataset).at_scale(num_nodes);

    let num_batches = cur.u64()? as usize;
    let mut batches = Vec::with_capacity(num_batches.min(1 << 20));
    for _ in 0..num_batches {
        let len = cur.u64()? as usize;
        let mut batch = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            batch.push(NodeId::new(cur.u32()?));
        }
        batches.push(batch);
    }

    let num_offsets = cur.u64()? as usize;
    let mut offsets = Vec::with_capacity(num_offsets.min(1 << 28));
    for _ in 0..num_offsets {
        offsets.push(cur.u64()?);
    }
    let num_adj = cur.u64()? as usize;
    let mut adjacency = Vec::with_capacity(num_adj.min(1 << 28));
    for _ in 0..num_adj {
        adjacency.push(NodeId::new(cur.u32()?));
    }
    // Validate the CSR invariants before from_raw_parts (which panics
    // on violation); the checksum rules out corruption, so a failure
    // here means version drift FORMAT_VERSION failed to capture — treat
    // it as a miss rather than bringing the process down.
    if offsets.is_empty()
        || offsets[0] != 0
        || offsets.windows(2).any(|w| w[0] > w[1])
        || *offsets.last()? != adjacency.len() as u64
        || adjacency.iter().any(|v| v.index() >= offsets.len() - 1)
    {
        return None;
    }
    let graph = CsrGraph::from_raw_parts(offsets, adjacency);

    let dim = cur.u64()? as usize;
    let num_values = cur.u64()? as usize;
    if dim == 0 || !num_values.is_multiple_of(dim) {
        return None;
    }
    let mut values = Vec::with_capacity(num_values.min(1 << 28));
    for _ in 0..num_values {
        values.push(f32::from_bits(cur.u32()?));
    }
    let features = FeatureTable::from_rows(dim, values);

    let dg = DirectGraph::load(cur.buf).ok()?;

    if graph.num_nodes() != num_nodes
        || features.num_nodes() != num_nodes
        || dg.directory().len() != num_nodes
    {
        return None;
    }
    Some(Workload::from_parts(
        spec,
        graph,
        features,
        dg,
        model,
        batches,
        seed,
        Some(fingerprint.to_string()),
    ))
}

/// The cascade-recording cache file path for a replay key inside `dir`.
///
/// Recordings live beside the BWC1 workload files in the same
/// directory, under their own `brc1-` prefix, and follow the same
/// container discipline: magic, [`FORMAT_VERSION`], key echo, FNV-1a
/// checksum, atomic temp-file publish. The shared version constant is
/// deliberate — anything that invalidates a cached workload (generator
/// streams, DirectGraph placement, batch drawing) also invalidates any
/// cascade recorded from it.
pub(crate) fn recording_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("brc1-{:016x}.bin", fnv1a(key.as_bytes())))
}

/// Attempts to load the cascade recording for `key` from `dir`.
/// Returns `None` on any validation failure; callers re-record.
pub(crate) fn load_recording(dir: &Path, key: &str) -> Option<CascadeRecording> {
    let _p = simkit::profile::phase("replay/disk_cache_load");
    let bytes = std::fs::read(recording_path(dir, key)).ok()?;
    if bytes.len() < RECORDING_MAGIC.len() + 8 || &bytes[..RECORDING_MAGIC.len()] != RECORDING_MAGIC
    {
        return None;
    }
    let (payload, tail) =
        bytes[RECORDING_MAGIC.len()..].split_at(bytes.len() - RECORDING_MAGIC.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(payload) != stored {
        return None;
    }
    let mut cur = Cursor { buf: payload };
    if cur.u32()? != FORMAT_VERSION {
        return None;
    }
    if cur.bytes()? != key.as_bytes() {
        return None;
    }
    let body_len = cur.u64()? as usize;
    if cur.buf.len() != body_len {
        return None;
    }
    let body = cur.take(body_len)?;
    CascadeRecording::from_bytes(body)
}

/// Best-effort save of `recording` under `key` in `dir`; I/O failures
/// only cost the next process a re-record.
pub(crate) fn save_recording(dir: &Path, key: &str, recording: &CascadeRecording) {
    let _ = try_save_recording(dir, key, recording);
}

fn try_save_recording(dir: &Path, key: &str, recording: &CascadeRecording) -> std::io::Result<()> {
    let _p = simkit::profile::phase("replay/disk_cache_save");
    let mut payload = Vec::new();
    payload.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    put_bytes(&mut payload, key.as_bytes());
    put_bytes(&mut payload, &recording.to_bytes());

    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        "tmp-rec-{}-{:016x}",
        std::process::id(),
        fnv1a(key.as_bytes())
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(RECORDING_MAGIC)?;
        file.write_all(&payload)?;
        file.write_all(&fnv1a(&payload).to_le_bytes())?;
        file.sync_all()?;
    }
    let result = std::fs::rename(&tmp, recording_path(dir, key));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn bytes(&mut self) -> Option<&[u8]> {
        let len = self.u64()? as usize;
        self.take(len)
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadBuilder;

    fn builder() -> WorkloadBuilder {
        Workload::builder()
            .dataset(crate::Dataset::Ogbn)
            .nodes(400)
            .batch_size(8)
            .batches(2)
            .seed(19)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("beacon-diskcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_identical(a: &Workload, b: &Workload) {
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.model(), b.model());
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.batches(), b.batches());
        assert_eq!(a.graph(), b.graph());
        assert_eq!(
            a.features()
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.features()
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(a.directgraph().digest(), b.directgraph().digest());
        assert_eq!(a.directgraph().stats(), b.directgraph().stats());
        assert_eq!(a.directgraph().directory(), b.directgraph().directory());
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let dir = tempdir("roundtrip");
        let b = builder();
        let key = b.fingerprint().unwrap();
        let w = b.prepare().unwrap();
        save(&dir, &key, &w);
        let loaded = load(&dir, &key).expect("fresh save must load");
        assert_identical(&w, &loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_wrong_key_miss() {
        let dir = tempdir("misskey");
        assert!(load(&dir, "no such key").is_none());
        let b = builder();
        let key = b.fingerprint().unwrap();
        let w = b.prepare().unwrap();
        save(&dir, &key, &w);
        // A different fingerprint maps to a different file name; even a
        // forced collision is rejected by the fingerprint echo.
        let other = file_path(&dir, "other-key");
        std::fs::copy(file_path(&dir, &key), &other).unwrap();
        assert!(load(&dir, "other-key").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_truncated_and_version_mismatched_files_fall_back() {
        let dir = tempdir("corrupt");
        let b = builder();
        let key = b.fingerprint().unwrap();
        let w = b.prepare().unwrap();
        save(&dir, &key, &w);
        let path = file_path(&dir, &key);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation at several depths (header, mid-payload, checksum).
        for cut in [3, 20, pristine.len() / 2, pristine.len() - 4] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(load(&dir, &key).is_none(), "truncated at {cut}");
        }
        // Bit flip in the middle of the payload breaks the checksum.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(load(&dir, &key).is_none(), "bit flip must fail checksum");
        // Version bump with a recomputed checksum still misses.
        let mut reversioned = pristine.clone();
        reversioned[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let body_end = reversioned.len() - 8;
        let sum = fnv1a(&reversioned[4..body_end]);
        reversioned[body_end..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &reversioned).unwrap();
        assert!(load(&dir, &key).is_none(), "future version must miss");
        // And the pristine bytes still load (the harness itself works).
        std::fs::write(&path, &pristine).unwrap();
        assert!(load(&dir, &key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_values_resolve_to_none() {
        // Can't mutate the process environment safely under parallel
        // tests; exercise the parsing contract directly.
        for v in ["0", "off", "OFF", "  ", ""] {
            let v = v.trim();
            let disabled = v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off");
            assert!(disabled, "{v:?} should disable the cache");
        }
    }
}
