//! Record-once / replay-many execution of experiment matrices.
//!
//! Sampling cascades are *content-keyed*: every die draw is a pure
//! function of (graph image, batch targets, model, run seed), so the
//! cascade a cell produces is identical on every platform and under
//! every device configuration. That makes the cascade a cacheable
//! artifact — record it once from a canonical engine, then **replay**
//! it under each cell's own platform/SSD timing without re-running the
//! sampler. `Engine::replay_with` is byte-identical to a full run (a
//! property-tested invariant), so replaying is purely a performance
//! decision: it can never change a result, a digest, or a figure row.
//!
//! ## Key derivation
//!
//! A cell is replayable iff its workload has a
//! [`Workload::fingerprint`] (caller-supplied graphs do not). The
//! replay key is
//!
//! ```text
//! <workload fingerprint>|seed=<cell seed>|cascade-v1
//! ```
//!
//! The fingerprint already covers everything sampling-relevant —
//! dataset, scale, batch drawing, page size, model — and the cell seed
//! covers the draw streams. Platform and `SsdConfig` are deliberately
//! *absent*: the cascade does not depend on them. The trailing
//! `cascade-v1` tag versions the recording semantics themselves and
//! must be bumped if the sampler's draw derivation ever changes.
//!
//! ## Fallback rules
//!
//! A cell runs the untouched full path (counted as `replay/fallback`
//! while the cache is active) when:
//!
//! * its workload has no fingerprint (custom graph), or
//! * its key appears only once in the matrix *and* no recording for it
//!   is already cached in memory or on disk (recording would cost more
//!   than it saves), or
//! * replay is disabled (`BEACON_REPLAY=0`/`off`, or
//!   [`ReplayCache::set_enabled`]`(false)`).
//!
//! ## Persistence
//!
//! Recordings persist through the same directory as the BWC1 workload
//! cache, in `brc1-` containers (see [`crate::diskcache`]); a second
//! process replays without ever recording. A loaded recording is
//! validated (checksum, key echo, structural invariants, batch shape)
//! before use; anything suspect is silently re-recorded.
//!
//! ## Exact-cell memo
//!
//! Replay re-times a cascade, so it still pays the event-driven
//! simulation — the irreducible cost of producing a *new* timing. But
//! the experiment suite also re-runs cells that are identical in every
//! timing-relevant respect (same platform, same device configuration,
//! same workload, same seed): Fig 15's utilization runs repeat Fig 14's
//! amazon cells, the default point of every Fig 18 sweep repeats the
//! paper-default cell, and so on. Since the engine is deterministic
//! (registry JSON is byte-identical run-to-run, a property-tested
//! invariant), such a cell's full [`RunMetrics`] is itself a replayable
//! artifact: the cache memoizes it under
//!
//! ```text
//! <replay key>|platform=<name>|ssd=<device configuration>
//! ```
//!
//! and serves later identical cells by cloning — counted as
//! `replay/memo_hit`. The memo is populated by full runs and replays
//! alike (so cross-figure deduplication needs no recording), lives in
//! memory only, and obeys the same kill switches as replay.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use beacon_platforms::{CascadeRecording, Engine, EngineScratch, Platform, RunMetrics};
use beacon_ssd::SsdConfig;
use simkit::profile;

use crate::diskcache;
use crate::matrix::RunCell;
use crate::workload::Workload;

/// Versions the recording semantics; bump when sampler draw derivation
/// or the recording's meaning changes.
const KEY_VERSION: &str = "cascade-v1";

/// Runtime kill-switch shared by every cache instance (scoped disables,
/// e.g. around calibration loops that must measure full runs).
static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// `BEACON_REPLAY` environment resolution, done once per process.
fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("BEACON_REPLAY") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("off"))
        }
        Err(_) => true,
    })
}

/// The replay key for a (workload, cell seed) pair, or `None` when the
/// workload carries no stable identity.
pub fn replay_key(workload: &Workload, seed: u64) -> Option<String> {
    let fp = workload.fingerprint()?;
    Some(format!("{fp}|seed={seed}|{KEY_VERSION}"))
}

/// Traffic counters of one [`ReplayCache`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Cells replayed from an already-cached recording.
    pub hits: u64,
    /// Recordings performed (the miss path: no usable recording in
    /// memory or on disk).
    pub records: u64,
    /// Recordings served by deserializing a `brc1-` disk file.
    pub disk_hits: u64,
    /// Cells that ran the untouched full path while the cache was
    /// active (no fingerprint, or a single-use key not worth recording).
    pub fallbacks: u64,
    /// Cells served by cloning the memoized metrics of an identical,
    /// already-executed cell (same platform, device config, workload
    /// and seed).
    pub memo_hits: u64,
}

/// One recording entry: a once-cell plus a build lock so concurrent
/// workers needing the *same* key record once and wait, while distinct
/// keys record fully concurrently (mirrors `WorkloadCache`'s slots).
#[derive(Debug, Default)]
struct Slot {
    ready: OnceLock<Arc<CascadeRecording>>,
    building: Mutex<()>,
}

/// Caches one [`CascadeRecording`] per replay key and executes
/// [`RunCell`]s by replaying it.
///
/// Internally synchronized; the process-wide instance behind
/// [`ReplayCache::global`] is what [`crate::RunMatrix::run_sequential`]
/// and [`crate::ParallelRunner::run`] consult. Tests inject their own
/// instances ([`ReplayCache::in_memory`], [`ReplayCache::with_disk_dir`],
/// [`ReplayCache::disabled`]) so they never mutate process-global state.
#[derive(Debug, Default)]
pub struct ReplayCache {
    map: Mutex<HashMap<String, Arc<Slot>>>,
    memo: Mutex<HashMap<String, Arc<RunMetrics>>>,
    disk: Option<PathBuf>,
    /// Instance-level switch; the effective state also requires the
    /// environment and runtime switches (see [`ReplayCache::is_active`]).
    enabled: bool,
    /// Whether identical cells are served from the exact-cell memo.
    memoize: bool,
    hits: AtomicU64,
    records: AtomicU64,
    disk_hits: AtomicU64,
    fallbacks: AtomicU64,
    memo_hits: AtomicU64,
}

impl ReplayCache {
    /// An enabled cache with the environment-resolved persistent layer
    /// (shared with the workload disk cache).
    pub fn new() -> Self {
        ReplayCache {
            disk: diskcache::default_dir(),
            enabled: true,
            memoize: true,
            ..Self::default()
        }
    }

    /// An enabled cache without a persistent layer.
    pub fn in_memory() -> Self {
        ReplayCache {
            enabled: true,
            memoize: true,
            ..Self::default()
        }
    }

    /// An enabled cache persisting recordings to `dir`.
    pub fn with_disk_dir(dir: impl Into<PathBuf>) -> Self {
        ReplayCache {
            disk: Some(dir.into()),
            enabled: true,
            memoize: true,
            ..Self::default()
        }
    }

    /// This cache with the exact-cell memo turned off: identical cells
    /// re-execute (replaying when keyed). Used to measure the pure
    /// re-timing cost of replay, which the memo would short-circuit.
    pub fn without_memo(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// A cache that never records or replays: every cell runs the full
    /// path, uncounted. Used to measure or pin the non-replay baseline.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// The process-wide cache used by the default matrix entry points.
    pub fn global() -> &'static ReplayCache {
        static GLOBAL: OnceLock<ReplayCache> = OnceLock::new();
        GLOBAL.get_or_init(ReplayCache::new)
    }

    /// Runtime kill-switch over *every* cache instance. Scoped disables
    /// (e.g. calibration loops that must time full runs) flip this off
    /// and back on; the environment variable `BEACON_REPLAY=0` disables
    /// replay for the whole process instead.
    pub fn set_enabled(on: bool) {
        RUNTIME_ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether this instance will record/replay right now.
    pub fn is_active(&self) -> bool {
        self.enabled && env_enabled() && RUNTIME_ENABLED.load(Ordering::Relaxed)
    }

    /// The persistent layer's directory, if one is configured.
    pub fn disk_dir(&self) -> Option<&std::path::Path> {
        self.disk.as_deref()
    }

    /// This instance's traffic counters.
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            hits: self.hits.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }

    /// The memo key of one fully-specified cell, or `None` when the
    /// memo cannot serve it (memo off, cache inactive, or no workload
    /// fingerprint). `SsdConfig`'s `Debug` form is the same identity
    /// string [`RunCell::derive_seed`](crate::RunCell::derive_seed)
    /// hashes. Latency-tracked runs key under a `|lat=` variant so a
    /// plain run's memoized metrics (whose latency report is disabled)
    /// are never served to a latency request, or vice versa.
    fn memo_key(
        &self,
        platform: Platform,
        ssd: &SsdConfig,
        workload: &Workload,
        seed: u64,
        lat: Option<simkit::Duration>,
    ) -> Option<String> {
        if !self.memoize || !self.is_active() {
            return None;
        }
        let key = replay_key(workload, seed)?;
        let mut key = format!("{key}|platform={}|ssd={ssd:?}", platform.spec().name);
        if let Some(epoch) = lat {
            key.push_str(&format!("|lat={}", epoch.as_ns()));
        }
        Some(key)
    }

    /// Serves a memoized cell, if present.
    fn memo_get(&self, key: &str) -> Option<RunMetrics> {
        let memo = self.memo.lock().expect("replay memo poisoned");
        let m = memo.get(key)?;
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
        profile::count("replay/memo_hit", 1);
        Some((**m).clone())
    }

    /// Memoizes an executed cell's metrics. Concurrent duplicates are
    /// harmless: the engine is deterministic, so any racer's result is
    /// byte-identical to the one that sticks.
    fn memo_put(&self, key: String, metrics: &RunMetrics) {
        let mut memo = self.memo.lock().expect("replay memo poisoned");
        memo.entry(key).or_insert_with(|| Arc::new(metrics.clone()));
    }

    /// Decides, before a matrix executes, which cells replay: for each
    /// cell either `Some(key)` (record-once/replay-many) or `None` (full
    /// run). A key qualifies when ≥ 2 cells share it — the record cost
    /// amortizes inside this matrix — or a recording for it is already
    /// cached in memory or on disk. The plan is fixed up front and
    /// shared verbatim by the sequential and parallel paths, so the
    /// executor's schedule can never influence what replays; and since
    /// replay is byte-identical to a full run, the plan itself only ever
    /// affects wall-clock, not results.
    pub(crate) fn plan(&self, cells: &[RunCell]) -> Vec<Option<String>> {
        if !self.is_active() {
            return vec![None; cells.len()];
        }
        let keys: Vec<Option<String>> = cells
            .iter()
            .map(|c| replay_key(&c.workload, c.seed))
            .collect();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for k in keys.iter().flatten() {
            *counts.entry(k.clone()).or_insert(0) += 1;
        }
        keys.into_iter()
            .map(|k| k.filter(|k| counts[k.as_str()] >= 2 || self.has_recording(k)))
            .collect()
    }

    /// Whether a recording for `key` already exists in memory or on
    /// disk (without loading it).
    fn has_recording(&self, key: &str) -> bool {
        {
            let map = self.map.lock().expect("replay cache poisoned");
            if map.get(key).is_some_and(|s| s.ready.get().is_some()) {
                return true;
            }
        }
        self.disk
            .as_deref()
            .is_some_and(|dir| diskcache::recording_path(dir, key).exists())
    }

    /// Executes one cell under the pre-computed plan: serving identical
    /// already-executed cells from the memo, replaying via the cached
    /// recording when `key` is set, and running the untouched full path
    /// otherwise (memoizing either outcome for later identical cells).
    pub(crate) fn execute_cell(
        &self,
        cell: &RunCell,
        key: Option<&str>,
        scratch: &mut EngineScratch,
    ) -> RunMetrics {
        let memo_key = self.memo_key(cell.platform, &cell.ssd, &cell.workload, cell.seed, None);
        if let Some(mk) = &memo_key {
            if let Some(m) = self.memo_get(mk) {
                return m;
            }
        }
        let metrics = match key {
            None => {
                if self.is_active() {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                    profile::count("replay/fallback", 1);
                }
                cell.execute_with(scratch)
            }
            Some(key) => {
                let recording = self.get_or_record(key, &cell.workload, cell.seed, scratch);
                self.hits.fetch_add(1, Ordering::Relaxed);
                profile::count("replay/hit", 1);
                Engine::new(
                    cell.platform,
                    cell.ssd,
                    cell.workload.model(),
                    cell.workload.directgraph(),
                    cell.seed,
                )
                .replay_with(scratch, &recording, cell.workload.batches())
            }
        };
        if let Some(mk) = memo_key {
            self.memo_put(mk, &metrics);
        }
        metrics
    }

    /// Executes one stand-alone run (the [`crate::Experiment::run`]
    /// path) through the cache: identical earlier runs — including
    /// matrix cells — are served from the memo, a key whose recording
    /// is already cached replays, and everything else runs the full
    /// path and populates the memo. A single run never *records*: with
    /// no sibling cells to amortize it, recording costs more than it
    /// saves (the same rule [`ReplayCache::plan`] applies to single-use
    /// keys).
    pub(crate) fn run_single(
        &self,
        platform: Platform,
        ssd: SsdConfig,
        workload: &Workload,
        seed: u64,
    ) -> RunMetrics {
        self.run_single_inner(platform, ssd, workload, seed, None)
    }

    /// [`ReplayCache::run_single`] with per-query latency tracking
    /// enabled at `epoch` (the [`crate::Experiment::run_latency`]
    /// path). Latency runs share the same recordings as plain runs —
    /// the cascade does not depend on whether latency is tracked — but
    /// memoize under their own `|lat=` variant key.
    pub(crate) fn run_single_lat(
        &self,
        platform: Platform,
        ssd: SsdConfig,
        workload: &Workload,
        seed: u64,
        epoch: simkit::Duration,
    ) -> RunMetrics {
        self.run_single_inner(platform, ssd, workload, seed, Some(epoch))
    }

    fn run_single_inner(
        &self,
        platform: Platform,
        ssd: SsdConfig,
        workload: &Workload,
        seed: u64,
        lat: Option<simkit::Duration>,
    ) -> RunMetrics {
        let engine = || {
            let e = Engine::new(
                platform,
                ssd,
                workload.model(),
                workload.directgraph(),
                seed,
            );
            match lat {
                Some(epoch) => e.with_latency(epoch),
                None => e,
            }
        };
        if !self.is_active() {
            return engine().run(workload.batches());
        }
        let mk = self.memo_key(platform, &ssd, workload, seed, lat);
        if let Some(mk) = &mk {
            if let Some(m) = self.memo_get(mk) {
                return m;
            }
        }
        let metrics = match replay_key(workload, seed).filter(|k| self.has_recording(k)) {
            Some(key) => {
                let mut scratch = EngineScratch::new();
                let recording = self.get_or_record(&key, workload, seed, &mut scratch);
                self.hits.fetch_add(1, Ordering::Relaxed);
                profile::count("replay/hit", 1);
                engine().replay_with(&mut scratch, &recording, workload.batches())
            }
            None => engine().run(workload.batches()),
        };
        if let Some(mk) = mk {
            self.memo_put(mk, &metrics);
        }
        metrics
    }

    /// Records the workload's sampling cascade into this cache (loading
    /// it from disk if a sibling process already recorded it) so that
    /// subsequent [`ReplayCache::run_single`] /
    /// [`ReplayCache::run_single_lat`] calls replay instead of running
    /// the sampler. Returns whether a recording is now available —
    /// `false` when the cache is inactive or the workload has no
    /// fingerprint. The record cost amortizes whenever more than one
    /// platform or device configuration runs the same workload.
    pub fn prime_recording(&self, workload: &Workload, seed: u64) -> bool {
        if !self.is_active() {
            return false;
        }
        let Some(key) = replay_key(workload, seed) else {
            return false;
        };
        let mut scratch = EngineScratch::new();
        self.get_or_record(&key, workload, seed, &mut scratch);
        true
    }

    /// Returns the recording for `key`, recording it from a canonical
    /// engine on first use. Concurrent callers with the same key share
    /// one recording; distinct keys record concurrently.
    fn get_or_record(
        &self,
        key: &str,
        workload: &Workload,
        seed: u64,
        scratch: &mut EngineScratch,
    ) -> Arc<CascadeRecording> {
        let slot = {
            let mut map = self.map.lock().expect("replay cache poisoned");
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        if let Some(r) = slot.ready.get() {
            return Arc::clone(r);
        }
        let _build = slot.building.lock().expect("replay build lock poisoned");
        if let Some(r) = slot.ready.get() {
            return Arc::clone(r);
        }
        // In-memory miss: a sibling process may have recorded this key.
        if let Some(dir) = self.disk.as_deref() {
            if let Some(rec) = diskcache::load_recording(dir, key) {
                // Shape-check against the live workload: a stale or
                // colliding file must re-record, not panic in replay.
                if rec.matches_batches(workload.batches()) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    profile::count("replay/disk_hit", 1);
                    let rec = Arc::new(rec);
                    let _ = slot.ready.set(Arc::clone(&rec));
                    return rec;
                }
            }
        }
        // Record from the canonical engine: BG-2 (the only platform
        // whose command stream is channel-separable and barrier-free)
        // under the paper-default device at the workload's page size.
        // The cascade is platform/timing-independent, so *which*
        // canonical config records it cannot matter — this one is just
        // the cheapest well-defined choice.
        self.records.fetch_add(1, Ordering::Relaxed);
        profile::count("replay/record", 1);
        let ssd =
            SsdConfig::paper_default().with_page_size(workload.directgraph().layout().page_size());
        let (_, recording) = Engine::new(
            Platform::Bg2,
            ssd,
            workload.model(),
            workload.directgraph(),
            seed,
        )
        .record_cascade(scratch, workload.batches());
        if let Some(dir) = self.disk.as_deref() {
            diskcache::save_recording(dir, key, &recording);
        }
        let recording = Arc::new(recording);
        let _ = slot.ready.set(Arc::clone(&recording));
        recording
    }

    /// Number of recordings currently resident in memory.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("replay cache poisoned")
            .values()
            .filter(|s| s.ready.get().is_some())
            .count()
    }

    /// Returns `true` if no recordings are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident recording and memoized cell (disk files are
    /// kept).
    pub fn clear(&self) {
        self.map.lock().expect("replay cache poisoned").clear();
        self.memo.lock().expect("replay memo poisoned").clear();
    }
}
