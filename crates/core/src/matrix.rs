//! Deterministic parallel experiment execution.
//!
//! Paper reproductions sweep a cross product of platforms × workloads ×
//! device configurations, and every cell is an independent
//! single-threaded simulation — embarrassingly parallel, as long as
//! nothing about the *schedule* leaks into the results. This module
//! keeps the two concerns apart:
//!
//! * **Identity** — a [`RunCell`] owns everything one simulation needs
//!   (platform, shared [`Workload`], [`SsdConfig`], seed). Seeds are
//!   either inherited from the workload (matching the legacy
//!   [`Experiment`](crate::Experiment) path bit-for-bit) or derived
//!   from the *cell's identity* via [`RunCell::derive_seed`] — never
//!   from the position a cell happens to run in.
//! * **Schedule** — [`ParallelRunner`] fans cells out over scoped
//!   worker threads and writes each result into the cell's own indexed
//!   slot. Workers steal cells from a shared counter, so the schedule
//!   varies run to run, but no cell can observe it: output order and
//!   content are byte-identical at any `--jobs` count, including 1.
//!
//! Shared immutable inputs (the DirectGraph image, CSR graph and
//! feature table inside a [`Workload`]) are reference-counted with
//! [`Arc`], so a 64-cell sweep holds one dataset in memory, not 64.
//! [`WorkloadCache`] completes the picture for sweeps that vary only
//! the device configuration: each distinct workload is prepared once.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use beacon_platforms::{Engine, EngineScratch, Platform, RunMetrics};
use beacon_ssd::SsdConfig;

use crate::diskcache;
use crate::replaycache::ReplayCache;
use crate::workload::{Workload, WorkloadBuilder, WorkloadError};

// The whole module rests on experiment inputs being freely shareable
// across worker threads; fail compilation, not runtime, if a field
// ever loses that property.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
    assert_send_sync::<RunMetrics>();
    assert_send_sync::<RunCell>();
    assert_send_sync::<RunMatrix>();
};

/// FNV-1a over `bytes`, continuing from hash state `h`.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: spreads related FNV states far apart so
/// per-die XOR-derived TRNG streams (see `Engine::new`) never overlap
/// between neighboring cells.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One independent simulation: a platform over a shared workload under
/// a device configuration, with an explicit seed.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use beacongnn::{Platform, RunCell, Workload};
///
/// let w = Arc::new(Workload::builder().nodes(800).batch_size(8).batches(1).prepare()?);
/// let metrics = RunCell::new(Platform::Bg2, Arc::clone(&w)).execute();
/// assert_eq!(metrics.platform, "BG-2");
/// # Ok::<(), beacongnn::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RunCell {
    /// The platform to simulate.
    pub platform: Platform,
    /// The shared, immutable workload.
    pub workload: Arc<Workload>,
    /// The device configuration (page size forced to the workload's).
    pub ssd: SsdConfig,
    /// Die-TRNG seed for this cell.
    pub seed: u64,
}

impl RunCell {
    /// A cell with the paper-default SSD and the workload's own seed —
    /// exactly what `Experiment::new(&w).run(platform)` simulates.
    pub fn new(platform: Platform, workload: Arc<Workload>) -> Self {
        let ssd =
            SsdConfig::paper_default().with_page_size(workload.directgraph().layout().page_size());
        let seed = workload.seed();
        RunCell {
            platform,
            workload,
            ssd,
            seed,
        }
    }

    /// Overrides the device configuration; the page size is forced to
    /// match the workload's DirectGraph layout.
    pub fn ssd(mut self, ssd: SsdConfig) -> Self {
        self.ssd = ssd.with_page_size(self.workload.directgraph().layout().page_size());
        self
    }

    /// Overrides the seed explicitly.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives this cell's seed from its *identity* — platform name,
    /// device configuration, workload seed and a caller salt (e.g. the
    /// replica number of a seed sweep). Two cells with the same
    /// identity get the same seed no matter how many sibling cells
    /// exist or in what order any runner executes them, which is what
    /// keeps seed sweeps reproducible under `--jobs N`.
    pub fn derive_seed(mut self, salt: u64) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325; // FNV offset basis
        h = fnv1a(h, self.platform.spec().name.as_bytes());
        h = fnv1a(h, format!("{:?}", self.ssd).as_bytes());
        h = fnv1a(h, &self.workload.seed().to_le_bytes());
        h = fnv1a(h, &salt.to_le_bytes());
        self.seed = mix(h);
        self
    }

    /// Runs the simulation.
    pub fn execute(&self) -> RunMetrics {
        let mut scratch = EngineScratch::new();
        self.execute_with(&mut scratch)
    }

    /// Runs the simulation with caller-owned scratch buffers, so a
    /// worker executing many cells reuses one warm calendar slab and
    /// outcome pool instead of growing fresh ones per cell. Results are
    /// bit-identical to [`RunCell::execute`].
    pub fn execute_with(&self, scratch: &mut EngineScratch) -> RunMetrics {
        Engine::new(
            self.platform,
            self.ssd,
            self.workload.model(),
            self.workload.directgraph(),
            self.seed,
        )
        .run_with(scratch, self.workload.batches())
    }
}

/// An ordered collection of independent [`RunCell`]s.
///
/// Results always come back in cell order regardless of how the matrix
/// is executed.
#[derive(Debug, Clone, Default)]
pub struct RunMatrix {
    cells: Vec<RunCell>,
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a cell; returns its index (= its slot in the results).
    pub fn push(&mut self, cell: RunCell) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Appends one default cell per platform (shared workload,
    /// paper-default SSD, workload seed) — the matrix equivalent of
    /// `Experiment::run_all`.
    pub fn add_platforms(&mut self, platforms: &[Platform], workload: &Arc<Workload>) {
        for &p in platforms {
            self.push(RunCell::new(p, Arc::clone(workload)));
        }
    }

    /// Appends `replicas` cells of one platform with identity-derived
    /// seeds (salted by replica number).
    pub fn add_seed_sweep(
        &mut self,
        platform: Platform,
        workload: &Arc<Workload>,
        replicas: usize,
    ) {
        for r in 0..replicas {
            self.push(RunCell::new(platform, Arc::clone(workload)).derive_seed(r as u64));
        }
    }

    /// The cells, in result order.
    pub fn cells(&self) -> &[RunCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes every cell on the calling thread, in order, sharing one
    /// warm scratch across cells.
    ///
    /// Cells whose replay key (workload fingerprint + seed) is shared by
    /// other cells — or already recorded — execute by **replaying** one
    /// cascade recording under their own platform/SSD timing instead of
    /// re-running the sampler (see [`crate::replaycache`]). Replay is
    /// byte-identical to the full path, so results never depend on
    /// whether a cell replayed.
    pub fn run_sequential(&self) -> Vec<RunMetrics> {
        self.run_sequential_with(ReplayCache::global())
    }

    /// [`RunMatrix::run_sequential`] against a caller-owned
    /// [`ReplayCache`] (tests inject isolated or disabled caches).
    pub fn run_sequential_with(&self, cache: &ReplayCache) -> Vec<RunMetrics> {
        let plan = cache.plan(&self.cells);
        let mut scratch = EngineScratch::new();
        self.cells
            .iter()
            .zip(&plan)
            .map(|(c, k)| cache.execute_cell(c, k.as_deref(), &mut scratch))
            .collect()
    }

    /// Executes the matrix on `jobs` worker threads; see
    /// [`ParallelRunner::run`].
    pub fn run_parallel(&self, jobs: usize) -> Vec<RunMetrics> {
        ParallelRunner::new(jobs).run(self)
    }
}

/// Executes a [`RunMatrix`] across scoped worker threads.
///
/// Workers pull cell indices from a shared atomic counter (work
/// stealing, so an unlucky long cell does not stall a whole stripe) and
/// write each result into the cell's own slot. Because every cell's
/// seed is fixed before execution starts and cells share no mutable
/// state, the result vector is bit-identical to
/// [`RunMatrix::run_sequential`] at any job count.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// A runner with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        ParallelRunner { jobs: jobs.max(1) }
    }

    /// A runner sized to the host: one worker per available core.
    pub fn host_sized() -> Self {
        Self::new(default_jobs())
    }

    /// The worker count in effect.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every cell of `matrix` and returns the metrics in cell
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a cell's simulation panicked).
    pub fn run(&self, matrix: &RunMatrix) -> Vec<RunMetrics> {
        self.run_with(matrix, ReplayCache::global())
    }

    /// [`ParallelRunner::run`] against a caller-owned [`ReplayCache`]
    /// (tests inject isolated or disabled caches). The replay plan is
    /// fixed before any worker starts — the identical plan the
    /// sequential path computes — so the work-stealing schedule cannot
    /// influence which cells replay.
    pub fn run_with(&self, matrix: &RunMatrix, cache: &ReplayCache) -> Vec<RunMetrics> {
        let cells = matrix.cells();
        let jobs = self.jobs.min(cells.len().max(1));
        if jobs <= 1 {
            return matrix.run_sequential_with(cache);
        }
        let plan = cache.plan(cells);
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<RunMetrics>> = Vec::new();
        results.resize_with(cells.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        // Per-worker scratch: each worker's calendar
                        // slab, drain buffer and outcome pool warm up
                        // once and serve every cell it steals, keeping
                        // workers out of the global allocator (the main
                        // cross-thread contention point).
                        let mut scratch = EngineScratch::new();
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = cells.get(i) else { break };
                            let key = plan[i].as_deref();
                            mine.push((i, cache.execute_cell(cell, key, &mut scratch)));
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                for (i, metrics) in handle.join().expect("experiment worker panicked") {
                    results[i] = Some(metrics);
                }
            }
        });
        results
            .into_iter()
            .map(|m| m.expect("every cell executed"))
            .collect()
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::host_sized()
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One cache entry: a once-cell for the prepared workload plus a build
/// lock so concurrent requests for the *same* key build once and wait,
/// while requests for *different* keys build fully concurrently.
#[derive(Debug, Default)]
struct CacheSlot {
    ready: OnceLock<Arc<Workload>>,
    building: Mutex<()>,
}

/// Prepares each distinct workload once and hands out [`Arc`] clones.
///
/// Sweeps that vary only the device configuration (core counts, channel
/// counts, page-size-compatible knobs, …) would otherwise synthesize
/// and convert the same dataset per point — by far the most expensive
/// part of an experiment. Builders carrying a custom graph bypass the
/// cache (their identity is the graph itself).
///
/// The cache is internally synchronized and can be shared across
/// threads (e.g. as a `static`). The map lock is only ever held for a
/// key lookup — multi-second workload builds happen outside it, each
/// under its own per-key lock, so parallel workers preparing *distinct*
/// workloads never serialize on each other (this was the root cause of
/// the sweep's negative parallel speedup).
///
/// Below the in-memory map sits an optional **persistent layer** (see
/// [`crate::diskcache`]): on an in-memory miss the per-key build first
/// tries to deserialize a previously saved workload from disk, and a
/// fresh build is saved back best-effort. [`WorkloadCache::new`]
/// resolves the directory from `BEACON_WORKLOAD_CACHE` (default
/// `target/workload-cache`; `0`/`off`/empty disables);
/// [`WorkloadCache::in_memory`] opts out entirely and
/// [`WorkloadCache::with_disk_dir`] pins an explicit directory (used by
/// tests, which must not share a process-global path).
#[derive(Debug, Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<String, Arc<CacheSlot>>>,
    disk: Option<PathBuf>,
}

impl WorkloadCache {
    /// An empty cache with the environment-resolved persistent layer.
    pub fn new() -> Self {
        WorkloadCache {
            map: Mutex::default(),
            disk: diskcache::default_dir(),
        }
    }

    /// An empty cache without a persistent layer.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// An empty cache persisting to `dir`.
    pub fn with_disk_dir(dir: impl Into<PathBuf>) -> Self {
        WorkloadCache {
            map: Mutex::default(),
            disk: Some(dir.into()),
        }
    }

    /// The persistent layer's directory, if one is configured.
    pub fn disk_dir(&self) -> Option<&std::path::Path> {
        self.disk.as_deref()
    }

    /// Returns the cached workload for `builder`'s parameters, preparing
    /// and inserting it on first use. Concurrent callers with the same
    /// parameters share one build; callers with different parameters
    /// build concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if preparation fails. Nothing is cached
    /// in that case — the slot is removed so a later caller can retry.
    pub fn get_or_prepare(&self, builder: WorkloadBuilder) -> Result<Arc<Workload>, WorkloadError> {
        let Some(key) = builder.fingerprint() else {
            return Ok(Arc::new(builder.prepare()?));
        };
        let slot = {
            let mut map = self.map.lock().expect("workload cache poisoned");
            Arc::clone(map.entry(key.clone()).or_default())
        };
        if let Some(w) = slot.ready.get() {
            return Ok(Arc::clone(w));
        }
        // Serialize builders of *this* key only; re-check under the
        // lock in case a racing builder just finished.
        let _build = slot.building.lock().expect("workload build lock poisoned");
        if let Some(w) = slot.ready.get() {
            return Ok(Arc::clone(w));
        }
        // In-memory miss: a sibling process may have already built and
        // persisted this workload.
        if let Some(dir) = &self.disk {
            if let Some(w) = diskcache::load(dir, &key) {
                let w = Arc::new(w);
                let _ = slot.ready.set(Arc::clone(&w));
                return Ok(w);
            }
        }
        match builder.prepare() {
            Ok(w) => {
                if let Some(dir) = &self.disk {
                    diskcache::save(dir, &key, &w);
                }
                let w = Arc::new(w);
                let _ = slot.ready.set(Arc::clone(&w));
                Ok(w)
            }
            Err(e) => {
                let mut map = self.map.lock().expect("workload cache poisoned");
                if let Some(s) = map.get(&key) {
                    if Arc::ptr_eq(s, &slot) {
                        map.remove(&key);
                    }
                }
                Err(e)
            }
        }
    }

    /// Number of distinct workloads currently cached (slots still being
    /// built do not count).
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("workload cache poisoned")
            .values()
            .filter(|s| s.ready.get().is_some())
            .count()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached workload (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        self.map.lock().expect("workload cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Duration;

    fn small_workload() -> Arc<Workload> {
        Arc::new(
            Workload::builder()
                .nodes(1_000)
                .batch_size(16)
                .batches(2)
                .seed(3)
                .prepare()
                .unwrap(),
        )
    }

    /// The deterministic signature of one run.
    fn key(m: &RunMetrics) -> (Duration, u64, u64, String) {
        (
            m.makespan,
            m.nodes_visited,
            m.flash_reads,
            format!("{:?}", m.energy),
        )
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let w = small_workload();
        let mut matrix = RunMatrix::new();
        matrix.add_platforms(&[Platform::Cc, Platform::Bg1, Platform::Bg2], &w);
        matrix.add_seed_sweep(Platform::Bg2, &w, 3);
        let seq = matrix.run_sequential();
        for jobs in [2, 4, 7] {
            let par = matrix.run_parallel(jobs);
            assert_eq!(par.len(), seq.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(key(s), key(p), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn cell_matches_legacy_experiment_path() {
        let w = small_workload();
        let legacy = crate::Experiment::new(w.as_ref()).run(Platform::Bg2);
        let cell = RunCell::new(Platform::Bg2, Arc::clone(&w)).execute();
        assert_eq!(key(&legacy), key(&cell));
    }

    #[test]
    fn derived_seeds_are_schedule_independent() {
        let w = small_workload();
        // The same identity in two differently shaped matrices.
        let a = RunCell::new(Platform::Bg2, Arc::clone(&w)).derive_seed(1);
        let mut big = RunMatrix::new();
        big.add_platforms(&[Platform::Cc, Platform::Glist], &w);
        big.add_seed_sweep(Platform::Bg2, &w, 2);
        let b = &big.cells()[3]; // replica 1 of the sweep
        assert_eq!(a.seed, b.seed);
        // Distinct identities get distinct seeds.
        assert_ne!(a.seed, big.cells()[2].seed);
        assert_ne!(a.seed, w.seed());
    }

    #[test]
    fn runner_clamps_jobs_and_handles_empty() {
        let runner = ParallelRunner::new(0);
        assert_eq!(runner.jobs(), 1);
        assert!(runner.run(&RunMatrix::new()).is_empty());
        assert!(RunMatrix::new().is_empty());
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn workload_cache_prepares_once() {
        let cache = WorkloadCache::new();
        let b = || {
            Workload::builder()
                .nodes(500)
                .batch_size(8)
                .batches(1)
                .seed(7)
        };
        let first = cache.get_or_prepare(b()).unwrap();
        let second = cache.get_or_prepare(b()).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "same parameters must share one workload"
        );
        assert_eq!(cache.len(), 1);
        // A different parameter is a different entry.
        let third = cache.get_or_prepare(b().seed(8)).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(first.graph().num_nodes(), 500);
    }

    #[test]
    fn cache_builds_once_under_concurrent_same_key_requests() {
        let cache = WorkloadCache::new();
        let b = || {
            Workload::builder()
                .nodes(600)
                .batch_size(8)
                .batches(1)
                .seed(11)
        };
        let results: Vec<Arc<Workload>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_prepare(b()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], w),
                "racing same-key requests must share one build"
            );
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_layer_shares_builds_across_cache_instances() {
        let dir = std::env::temp_dir().join(format!("beacon-matrix-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = || {
            Workload::builder()
                .dataset(crate::Dataset::Movielens)
                .nodes(400)
                .batch_size(8)
                .batches(1)
                .seed(23)
        };
        // First "process": builds fresh and persists.
        let first = WorkloadCache::with_disk_dir(&dir);
        assert_eq!(first.disk_dir(), Some(dir.as_path()));
        let a = first.get_or_prepare(b()).unwrap();
        // Second "process": fresh in-memory map, same directory — must
        // load the identical workload instead of rebuilding.
        let hits_before = diskcache::stats().hits;
        let second = WorkloadCache::with_disk_dir(&dir);
        let c = second.get_or_prepare(b()).unwrap();
        assert_eq!(diskcache::stats().hits, hits_before + 1);
        assert_eq!(a.directgraph().digest(), c.directgraph().digest());
        assert_eq!(a.batches(), c.batches());
        assert_eq!(a.graph(), c.graph());
        // In-memory caches stay independent objects.
        assert!(!Arc::ptr_eq(&a, &c));
        // An in-memory cache has no persistent layer.
        assert_eq!(WorkloadCache::in_memory().disk_dir(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_graph_bypasses_cache() {
        use beacon_graph::FeatureTable;
        let cache = WorkloadCache::new();
        let graph = beacon_graph::DatasetSpec::preset(crate::Dataset::Amazon)
            .at_scale(200)
            .build_graph(5);
        let features = FeatureTable::synthetic(200, 16, 5);
        let w = cache
            .get_or_prepare(
                Workload::builder()
                    .custom_graph(graph, features)
                    .batch_size(4)
                    .batches(1),
            )
            .unwrap();
        assert_eq!(w.graph().num_nodes(), 200);
        assert!(cache.is_empty(), "custom graphs must not be cached");
    }
}
