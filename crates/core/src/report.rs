//! Paper-style text tables.
//!
//! The experiment binaries print fixed-width rows matching the paper's
//! figures ("normalized throughput per platform per workload", "energy
//! breakdown", ...). This module holds the shared formatting helpers so
//! every table reads the same.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use beacongnn::report::Table;
/// let mut t = Table::new(&["platform", "speedup"]);
/// t.row(&["BG-2", "21.70x"]);
/// let s = t.render();
/// assert!(s.contains("BG-2"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i];
                if i + 1 == ncols {
                    let _ = writeln!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "{cell:<pad$}  ");
                }
            }
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a ratio as the paper does ("21.70x").
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage ("57.0%").
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a throughput in targets/second with thousands grouping.
pub fn throughput(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2}M/s", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1}k/s", tps / 1e3)
    } else {
        format!("{tps:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Both data columns start at the same offset in each line.
        assert_eq!(lines[0].find("long-header"), lines[2].find('x'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(21.7), "21.70x");
        assert_eq!(percent(0.573), "57.3%");
        assert_eq!(throughput(1_500_000.0), "1.50M/s");
        assert_eq!(throughput(1_500.0), "1.5k/s");
        assert_eq!(throughput(15.0), "15/s");
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["k"]);
        t.row_owned(vec!["v".to_string()]);
        assert_eq!(t.len(), 1);
    }
}
