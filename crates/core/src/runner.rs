//! Experiment runner: platforms × workloads × device configs.

use beacon_graph::Partition;
use beacon_platforms::{
    ArrayConfig, ArrayEngine, ArrayRunMetrics, Engine, PartitionedEngine, Platform, RunMetrics,
};
use beacon_ssd::SsdConfig;

use crate::replaycache::ReplayCache;
use crate::workload::Workload;

/// Runs platforms on a prepared workload under a device configuration.
///
/// # Examples
///
/// ```
/// use beacongnn::{Experiment, Platform, Workload};
///
/// let w = Workload::builder().nodes(800).batch_size(8).batches(1).prepare()?;
/// let metrics = Experiment::new(&w).run(Platform::Bg1);
/// assert_eq!(metrics.platform, "BG-1");
/// # Ok::<(), beacongnn::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Experiment<'a> {
    workload: &'a Workload,
    ssd: SsdConfig,
    seed: u64,
}

impl<'a> Experiment<'a> {
    /// Creates an experiment over `workload` with the paper-default SSD,
    /// matched to the workload's page size.
    pub fn new(workload: &'a Workload) -> Self {
        let ssd =
            SsdConfig::paper_default().with_page_size(workload.directgraph().layout().page_size());
        Experiment {
            workload,
            ssd,
            seed: workload.seed(),
        }
    }

    /// Overrides the device configuration (sensitivity sweeps). The
    /// page size is forced to match the workload's DirectGraph layout.
    pub fn ssd(mut self, ssd: SsdConfig) -> Self {
        self.ssd = ssd.with_page_size(self.workload.directgraph().layout().page_size());
        self
    }

    /// Overrides the simulation seed (die TRNG streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The device configuration in effect.
    pub fn config(&self) -> SsdConfig {
        self.ssd
    }

    /// Runs one platform end-to-end.
    ///
    /// The run is served through [`ReplayCache::global`]: an identical
    /// earlier run (same platform, device configuration, workload and
    /// seed — whether from an [`Experiment`] or a matrix cell) returns
    /// its memoized metrics, a workload whose cascade is already
    /// recorded replays it under this configuration, and anything else
    /// executes the full engine. All three paths are byte-identical
    /// (property-tested); disable with `BEACON_REPLAY=0` or
    /// [`ReplayCache::set_enabled`]`(false)` to force full execution.
    pub fn run(&self, platform: Platform) -> RunMetrics {
        ReplayCache::global().run_single(platform, self.ssd, self.workload, self.seed)
    }

    /// Runs one platform on the partitioned per-channel engine with
    /// `threads` worker threads (see
    /// [`PartitionedEngine`](beacon_platforms::PartitionedEngine)).
    /// Results are byte-identical at any thread count; platforms whose
    /// pipeline is not channel-separable (everything except BG-2) fall
    /// back to the serial engine and match [`Experiment::run`] exactly.
    pub fn run_partitioned(&self, platform: Platform, threads: usize) -> RunMetrics {
        PartitionedEngine::new(
            platform,
            self.ssd,
            self.workload.model(),
            self.workload.directgraph(),
            self.seed,
        )
        .threads(threads)
        .run(self.workload.batches())
    }

    /// Builds the multi-SSD array engine for one platform (see
    /// [`ArrayEngine`]): the graph shards across `array.ssds` devices
    /// and cross-partition expansions ride the configured fabric. Use
    /// [`ArrayEngine::record`] + [`ArrayEngine::run_recorded`] to reuse
    /// one recorded cascade across device counts, partitions, fabrics
    /// and thread counts.
    pub fn array_engine(&self, platform: Platform, array: ArrayConfig) -> ArrayEngine<'a> {
        ArrayEngine::new(
            platform,
            array,
            self.ssd,
            self.workload.model(),
            self.workload.directgraph(),
            self.seed,
        )
    }

    /// Records and replays one platform on a multi-SSD array in a
    /// single call: the workload's target batches route to the devices
    /// owning them under `partition`, device lanes replay in parallel
    /// on `threads` workers, and the report is byte-identical at any
    /// thread count.
    pub fn run_array(
        &self,
        platform: Platform,
        array: ArrayConfig,
        threads: usize,
        partition: &Partition,
    ) -> ArrayRunMetrics {
        self.array_engine(platform, array)
            .threads(threads)
            .run(partition, self.workload.batches())
    }

    /// Runs one platform with the sim-time observability layer enabled:
    /// the returned metrics carry up to `span_capacity` spans (die
    /// sense, channel transfer, batch pipeline stages), the router
    /// mirror statistics (BG-2), and the FTL setup-replay statistics.
    ///
    /// Timing is identical to [`Experiment::run`]; observability is
    /// bookkeeping only.
    pub fn run_observed(&self, platform: Platform, span_capacity: usize) -> RunMetrics {
        Engine::new(
            platform,
            self.ssd,
            self.workload.model(),
            self.workload.directgraph(),
            self.seed,
        )
        .with_obs(span_capacity)
        .run(self.workload.batches())
    }

    /// Runs one platform with per-query latency tracking enabled: the
    /// returned metrics carry the streaming latency histogram, tail
    /// percentiles and per-query critical-path stage attribution (the
    /// `latency` and `latency_breakdown` registry sections), with
    /// per-window percentile rows every `epoch` of sim time.
    ///
    /// Timing is identical to [`Experiment::run`]; latency tracking is
    /// bookkeeping only. The run is served through
    /// [`ReplayCache::global`] like [`Experiment::run`] — a cached
    /// cascade replays (byte-identical, property-tested) and identical
    /// latency runs are memoized under their own variant key, so a
    /// plain run's metrics (whose latency report is disabled) are never
    /// served here.
    pub fn run_latency(&self, platform: Platform, epoch: simkit::Duration) -> RunMetrics {
        ReplayCache::global().run_single_lat(platform, self.ssd, self.workload, self.seed, epoch)
    }

    /// Records this experiment's sampling cascade into the global
    /// replay cache (or loads a previously persisted recording), so
    /// that subsequent [`Experiment::run`] / [`Experiment::run_latency`]
    /// calls over the same workload and seed replay it instead of
    /// re-running the sampler. Returns whether a recording is
    /// available; `false` when replay is disabled or the workload has
    /// no fingerprint. Worth calling once before sweeping several
    /// platforms or device configurations over one workload.
    pub fn prime_replay(&self) -> bool {
        ReplayCache::global().prime_recording(self.workload, self.seed)
    }

    /// Runs several platforms and returns `(platform, metrics)` pairs.
    pub fn run_all(&self, platforms: &[Platform]) -> Vec<(Platform, RunMetrics)> {
        platforms.iter().map(|&p| (p, self.run(p))).collect()
    }

    /// Runs `platforms` and returns their throughputs normalized to the
    /// first entry (the paper normalizes to CC).
    pub fn normalized_throughput(&self, platforms: &[Platform]) -> Vec<(Platform, f64)> {
        let runs = self.run_all(platforms);
        let base = runs.first().map(|(_, m)| m.throughput()).unwrap_or(1.0);
        runs.into_iter()
            .map(|(p, m)| (p, m.throughput() / base))
            .collect()
    }

    /// Runs one platform under `seeds` different TRNG seeds and returns
    /// throughput statistics — the sampling randomness is the only
    /// stochastic input, so this quantifies run-to-run spread.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is zero.
    pub fn run_seeds(&self, platform: Platform, seeds: usize) -> ThroughputStats {
        assert!(seeds > 0, "need at least one seed");
        let samples: Vec<f64> = (0..seeds as u64)
            .map(|i| {
                Experiment {
                    workload: self.workload,
                    ssd: self.ssd,
                    seed: self.seed ^ (i << 13),
                }
                .run(platform)
                .throughput()
            })
            .collect();
        ThroughputStats::from_samples(&samples)
    }
}

/// Throughput statistics over repeated seeded runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputStats {
    /// Number of runs.
    pub runs: usize,
    /// Mean targets/second.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub stdev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl ThroughputStats {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        ThroughputStats {
            runs: n,
            mean,
            stdev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation (stdev / mean).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.stdev / self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn small_workload() -> Workload {
        Workload::builder()
            .nodes(1_000)
            .batch_size(16)
            .batches(1)
            .seed(3)
            .prepare()
            .unwrap()
    }

    #[test]
    fn run_produces_metrics() {
        let w = small_workload();
        let m = Experiment::new(&w).run(Platform::Bg2);
        assert_eq!(m.platform, "BG-2");
        assert_eq!(m.targets, 16);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn normalized_throughput_base_is_one() {
        let w = small_workload();
        let norm = Experiment::new(&w).normalized_throughput(&[
            Platform::Cc,
            Platform::Bg1,
            Platform::Bg2,
        ]);
        assert_eq!(norm[0].1, 1.0);
        assert!(norm[2].1 > norm[0].1);
    }

    #[test]
    fn ssd_override_keeps_workload_page_size() {
        let w = small_workload();
        let exp = Experiment::new(&w).ssd(SsdConfig::paper_default().with_page_size(16384));
        assert_eq!(exp.config().geometry.page_size, 4096);
    }

    #[test]
    fn seed_statistics_are_tight() {
        // Sampling randomness should move throughput only slightly —
        // the workload shape, not the draw, determines performance.
        let w = small_workload();
        let stats = Experiment::new(&w).run_seeds(Platform::Bg2, 4);
        assert_eq!(stats.runs, 4);
        assert!(stats.mean > 0.0);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(
            stats.cv() < 0.15,
            "run-to-run CV {:.3} too high",
            stats.cv()
        );
    }

    #[test]
    fn run_array_matches_serial_on_one_device() {
        let w = small_workload();
        let exp = Experiment::new(&w);
        let single = exp.run(Platform::Bg2);
        let array = exp.run_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(1),
            1,
            &Partition::hash(w.graph(), 1),
        );
        assert_eq!(array.metrics.makespan, single.makespan);
        assert_eq!(array.metrics.flash_reads, single.flash_reads);
        assert!((array.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_array_shards_work_across_devices() {
        let w = small_workload();
        let exp = Experiment::new(&w);
        let single = exp.run(Platform::Bg2);
        let array = exp.run_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            2,
            &Partition::hash(w.graph(), 4),
        );
        assert_eq!(array.devices, 4);
        assert_eq!(
            array.per_device.iter().map(|d| d.flash_reads).sum::<u64>(),
            single.flash_reads
        );
        assert!(array.cross_edges > 0);
    }

    #[test]
    fn sweeping_cores_changes_firmware_platforms_only() {
        let w = small_workload();
        let few = Experiment::new(&w)
            .ssd(SsdConfig::paper_default().with_cores(1))
            .run(Platform::Bg2);
        let many = Experiment::new(&w)
            .ssd(SsdConfig::paper_default().with_cores(8))
            .run(Platform::Bg2);
        // BG-2 removes firmware from the sampling path: core count must
        // not matter (Fig 18c).
        let ratio = many.throughput() / few.throughput();
        assert!(
            (0.95..=1.05).contains(&ratio),
            "BG-2 core sensitivity {ratio:.3}"
        );
    }
}
