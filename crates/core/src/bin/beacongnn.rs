//! `beacongnn` — command-line front end for the BeaconGNN reproduction.
//!
//! ```sh
//! beacongnn convert --dataset amazon --nodes 20000 --out amazon.dgr
//! beacongnn inspect amazon.dgr
//! beacongnn run --dataset amazon --nodes 20000 --platform BG-2 --batches 4
//! beacongnn compare --dataset ogbn --nodes 10000
//! ```
//!
//! `convert` persists the DirectGraph image (the expensive step) so
//! `inspect` can examine it later; `run`/`compare` execute platforms on
//! a freshly prepared workload.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use beacongnn::directgraph::DirectGraph;
use beacongnn::report::{percent, ratio, throughput, Table};
use beacongnn::{Dataset, Experiment, Platform, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("convert") => convert(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  beacongnn convert --dataset <name> [--nodes N] --out <file.dgr>\n  \
         beacongnn inspect <file.dgr>\n  \
         beacongnn run --dataset <name> [--nodes N] [--platform P] [--batch N] [--batches N]\n      \
         [--trace out.json|out.csv] [--metrics out.metrics.json]\n      \
         [--latency-csv out.csv] [--latency-epoch-us N]\n  \
         beacongnn compare --dataset <name> [--nodes N] [--batch N]\n\
         datasets: reddit amazon movielens ogbn ppi\n\
         platforms: CC SmartSage GList BG-1 BG-DG BG-SP BG-DGSP BG-2"
    );
}

/// Tiny flag parser: `--key value` pairs plus positionals.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn positional(&self) -> Option<&'a str> {
        self.args
            .first()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v}")),
        }
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "reddit" => Ok(Dataset::Reddit),
        "amazon" => Ok(Dataset::Amazon),
        "movielens" => Ok(Dataset::Movielens),
        "ogbn" => Ok(Dataset::Ogbn),
        "ppi" => Ok(Dataset::Ppi),
        other => Err(format!("unknown dataset `{other}`")),
    }
}

fn parse_platform(s: &str) -> Result<Platform, String> {
    Platform::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown platform `{s}`"))
}

fn build_workload(flags: &Flags) -> Result<Workload, String> {
    let dataset = parse_dataset(flags.get("--dataset").ok_or("--dataset is required")?)?;
    let nodes: usize = flags.parse("--nodes", 10_000)?;
    let batch: usize = flags.parse("--batch", 256)?;
    let batches: usize = flags.parse("--batches", 3)?;
    let seed: u64 = flags.parse("--seed", 2024)?;
    Workload::builder()
        .dataset(dataset)
        .nodes(nodes)
        .batch_size(batch)
        .batches(batches)
        .seed(seed)
        .prepare()
        .map_err(|e| e.to_string())
}

fn convert(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let out = flags.get("--out").ok_or("--out is required")?;
    let w = build_workload(&flags)?;
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    w.directgraph()
        .save(BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    let stats = w.directgraph().stats();
    println!(
        "wrote {out}: {} pages ({} primary / {} secondary), {} nodes, inflation {}",
        stats.total_pages(),
        stats.primary_pages,
        stats.secondary_pages,
        w.directgraph().directory().len(),
        percent(w.directgraph().inflation(w.features()).inflation_ratio()),
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("expected a .dgr file path")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let dg = DirectGraph::load(BufReader::new(file)).map_err(|e| e.to_string())?;
    let stats = dg.stats();
    let mut t = Table::new(&["property", "value"]);
    t.row_owned(vec!["nodes".into(), dg.directory().len().to_string()]);
    t.row_owned(vec!["edges".into(), stats.edges.to_string()]);
    t.row_owned(vec![
        "page size".into(),
        dg.layout().page_size().to_string(),
    ]);
    t.row_owned(vec![
        "primary pages".into(),
        stats.primary_pages.to_string(),
    ]);
    t.row_owned(vec![
        "secondary pages".into(),
        stats.secondary_pages.to_string(),
    ]);
    t.row_owned(vec![
        "secondary sections".into(),
        stats.secondary_sections.to_string(),
    ]);
    t.row_owned(vec![
        "page utilization".into(),
        percent(stats.used_bytes as f64 / dg.image().stored_bytes() as f64),
    ]);
    println!("{}", t.render());
    // Firmware-grade validation.
    beacongnn::directgraph::Validator::new(&dg)
        .verify_image()
        .map_err(|e| format!("image failed validation: {e}"))?;
    println!("image passes §VI-E validation");
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let platform = parse_platform(flags.get("--platform").unwrap_or("BG-2"))?;
    let w = build_workload(&flags)?;
    let trace_path = flags.get("--trace");
    let metrics_path = flags.get("--metrics");
    let latency_csv = flags.get("--latency-csv");
    let latency_epoch = simkit::Duration::from_us(flags.parse("--latency-epoch-us", 1_000u64)?);
    // `--trace foo.csv` keeps the legacy event-ring CSV; any other
    // extension gets a Chrome trace-event JSON (Perfetto-loadable).
    let csv_trace = trace_path.is_some_and(|p| p.ends_with(".csv"));
    let m = if csv_trace {
        // Legacy CSV trace runs through the engine directly.
        beacongnn::platforms::Engine::new(
            platform,
            Experiment::new(&w).config(),
            w.model(),
            w.directgraph(),
            w.seed(),
        )
        .with_trace(1 << 20)
        .run(w.batches())
    } else if latency_csv.is_some() {
        // Per-query latency tracking, optionally alongside spans.
        let mut engine = beacongnn::platforms::Engine::new(
            platform,
            Experiment::new(&w).config(),
            w.model(),
            w.directgraph(),
            w.seed(),
        )
        .with_latency(latency_epoch);
        if trace_path.is_some() || metrics_path.is_some() {
            engine = engine.with_obs(1 << 20);
        }
        engine.run(w.batches())
    } else if trace_path.is_some() || metrics_path.is_some() {
        Experiment::new(&w).run_observed(platform, 1 << 20)
    } else {
        Experiment::new(&w).run(platform)
    };
    if let Some(path) = trace_path {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        if csv_trace {
            m.trace
                .to_csv(BufWriter::new(file))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "trace written to {path} ({} events, {} dropped)",
                m.trace.len(),
                m.trace.dropped()
            );
        } else {
            simkit::ChromeTraceWriter::write(&m.spans, BufWriter::new(file))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "trace written to {path} ({} spans, {} dropped)",
                m.spans.len(),
                m.spans.dropped()
            );
            if m.spans.dropped() > 0 {
                eprintln!(
                    "warning: {} spans were dropped at capacity {} — the exported trace \
                     is incomplete",
                    m.spans.dropped(),
                    m.spans.capacity()
                );
            }
        }
    }
    if let Some(path) = metrics_path {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        m.metrics_registry()
            .write_json(BufWriter::new(file))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if let Some(path) = latency_csv {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        m.latency
            .write_query_csv(BufWriter::new(file))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "per-query latency written to {path} ({} queries)",
            m.latency.queries().len()
        );
    }
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["platform".into(), m.platform.to_string()]);
    t.row_owned(vec!["targets".into(), m.targets.to_string()]);
    t.row_owned(vec!["throughput".into(), throughput(m.throughput())]);
    t.row_owned(vec!["makespan".into(), format!("{}", m.makespan)]);
    t.row_owned(vec!["prep time".into(), format!("{}", m.prep_time)]);
    t.row_owned(vec!["compute time".into(), format!("{}", m.compute_time)]);
    t.row_owned(vec!["flash reads".into(), m.flash_reads.to_string()]);
    if m.latency.is_enabled() {
        let h = m.latency.histogram();
        let q = |num, den| {
            format!(
                "{}",
                simkit::Duration::from_ns(h.percentile_ns(num, den).unwrap_or(0))
            )
        };
        t.row_owned(vec!["query p50".into(), q(50, 100)]);
        t.row_owned(vec!["query p99".into(), q(99, 100)]);
        t.row_owned(vec![
            "query max".into(),
            format!("{}", simkit::Duration::from_ns(h.max_ns().unwrap_or(0))),
        ]);
    }
    t.row_owned(vec!["die utilization".into(), percent(m.die_utilization())]);
    t.row_owned(vec![
        "channel utilization".into(),
        percent(m.channel_utilization()),
    ]);
    println!("{}", t.render());
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let w = build_workload(&flags)?;
    let exp = Experiment::new(&w);
    let norm = exp.normalized_throughput(&Platform::ALL);
    let mut t = Table::new(&["platform", "throughput", "vs CC"]);
    let runs = exp.run_all(&Platform::ALL);
    for ((p, x), (_, m)) in norm.iter().zip(&runs) {
        t.row_owned(vec![p.to_string(), throughput(m.throughput()), ratio(*x)]);
    }
    println!("{}", t.render());
    Ok(())
}
