//! # beacongnn — reproduction of BeaconGNN (HPCA 2024)
//!
//! *"BeaconGNN: Large-Scale GNN Acceleration with Out-of-Order Streaming
//! In-Storage Computing"* — a software/hardware co-design that offloads
//! the entire GNN task (neighbor sampling, feature lookup, computation)
//! into an ultra-low-latency flash SSD, using:
//!
//! * **DirectGraph** — a graph format indexed by flash physical
//!   addresses ([`directgraph`]),
//! * **multi-level near-data processing** — die-level samplers
//!   ([`beacon_flash::sampler`]), channel-level command routers
//!   ([`beacon_ssd::router`]), and a bus-attached spatial accelerator
//!   ([`beacon_accel`]),
//! * **system support** — reserved-block FTL, security validation,
//!   scrubbing and wear-leveling reclamation ([`beacon_ssd`]).
//!
//! This crate is the user-facing facade: build a workload once with
//! [`Workload::builder`] + [`WorkloadBuilder::prepare`], run any of the
//! paper's eight platforms on it with [`Experiment::run`], fan whole
//! sweeps across cores deterministically with [`RunMatrix`] +
//! [`ParallelRunner`], and format paper-style comparison tables with
//! [`report`].
//!
//! ## Quickstart
//!
//! ```
//! use beacongnn::{Experiment, Platform, Workload};
//!
//! // A small amazon-like workload (the paper's default single-workload
//! // dataset), at test scale.
//! let workload = Workload::builder()
//!     .dataset(beacongnn::Dataset::Amazon)
//!     .nodes(2_000)
//!     .batch_size(32)
//!     .batches(2)
//!     .seed(42)
//!     .prepare()?;
//!
//! let cc = Experiment::new(&workload).run(Platform::Cc);
//! let bg2 = Experiment::new(&workload).run(Platform::Bg2);
//! assert!(bg2.throughput() > cc.throughput());
//! # Ok::<(), beacongnn::WorkloadError>(())
//! ```

pub mod diskcache;
pub mod matrix;
pub mod replaycache;
pub mod report;
pub mod runner;
pub mod workload;

pub use beacon_gnn::GnnModelConfig;
pub use beacon_graph::{Dataset, DatasetSpec, NodeId, Partition};
pub use beacon_platforms::{
    ArrayCascade, ArrayConfig, ArrayEngine, ArrayRunMetrics, CascadeRecording, Platform, RunMetrics,
};
pub use beacon_ssd::{FabricConfig, SsdConfig};
pub use matrix::{default_jobs, ParallelRunner, RunCell, RunMatrix, WorkloadCache};
pub use replaycache::{replay_key, ReplayCache, ReplayStats};
pub use runner::{Experiment, ThroughputStats};
pub use workload::{Workload, WorkloadBuilder, WorkloadError};

// Re-export substrates for power users.
pub use beacon_accel as accel;
pub use beacon_energy as energy;
pub use beacon_flash as flash;
pub use beacon_platforms as platforms;
pub use beacon_ssd as ssd;
pub use directgraph;
pub use simkit;
