//! Workload preparation: graph + features + DirectGraph + mini-batches.
//!
//! Preparing a workload (synthesizing the graph and converting it to
//! DirectGraph) is the expensive part; [`Workload`] does it once and
//! can then be reused across all platforms and sensitivity points —
//! exactly how the paper holds the dataset fixed while sweeping the
//! architecture.

use std::fmt;

use beacon_gnn::GnnModelConfig;
use beacon_graph::{CsrGraph, Dataset, DatasetSpec, FeatureTable, MinibatchStream, NodeId};
use directgraph::{AddrLayout, BuildError, DirectGraph, DirectGraphBuilder};

/// Failure to prepare a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// DirectGraph construction failed.
    Build(BuildError),
    /// The requested page size has no valid address layout.
    BadPageSize(usize),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Build(e) => write!(f, "DirectGraph construction failed: {e}"),
            WorkloadError::BadPageSize(s) => write!(f, "unsupported page size {s}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Build(e) => Some(e),
            WorkloadError::BadPageSize(_) => None,
        }
    }
}

impl From<BuildError> for WorkloadError {
    fn from(e: BuildError) -> Self {
        WorkloadError::Build(e)
    }
}

/// Builder for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    dataset: Dataset,
    nodes: usize,
    batch_size: usize,
    batches: usize,
    page_size: usize,
    seed: u64,
    model: Option<GnnModelConfig>,
    custom: Option<(CsrGraph, FeatureTable)>,
}

impl WorkloadBuilder {
    /// Picks the dataset preset (default: amazon, the paper's
    /// representative workload).
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Graph scale in nodes (default 10 000).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Mini-batch size (default 256, the paper's largest sweep point).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Number of mini-batches to run (default 4).
    pub fn batches(mut self, batches: usize) -> Self {
        self.batches = batches;
        self
    }

    /// Flash page size in bytes (default 4096; Fig 18f sweeps 2–16 KB).
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// RNG seed for graph/feature synthesis and target selection.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the GNN model (default: the paper's 3 hops × 3 samples
    /// at the dataset's feature dimension).
    pub fn model(mut self, model: GnnModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Uses a caller-supplied graph and feature table instead of
    /// synthesizing one (e.g. loaded with
    /// [`beacon_graph::io::read_edge_list`]). The dataset preset then
    /// only labels the workload; `nodes` is taken from the graph.
    pub fn custom_graph(mut self, graph: CsrGraph, features: FeatureTable) -> Self {
        self.custom = Some((graph, features));
        self
    }

    /// A stable identity string for caching: two builders with the same
    /// fingerprint prepare byte-identical workloads. Builders carrying a
    /// caller-supplied graph have no fingerprint (the graph itself is
    /// the identity, and hashing it would cost more than rebuilding the
    /// image).
    pub(crate) fn fingerprint(&self) -> Option<String> {
        if self.custom.is_some() {
            return None;
        }
        Some(format!(
            "{:?}|n{}|b{}|c{}|p{}|s{}|m{:?}",
            self.dataset,
            self.nodes,
            self.batch_size,
            self.batches,
            self.page_size,
            self.seed,
            self.model,
        ))
    }

    /// Synthesizes the graph, converts it to DirectGraph, and draws the
    /// mini-batch targets.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the page size is unsupported or
    /// conversion fails.
    pub fn prepare(self) -> Result<Workload, WorkloadError> {
        let _prep_phase = simkit::profile::phase("workload/prepare");
        let fingerprint = self.fingerprint();
        let layout = AddrLayout::for_page_size(self.page_size)
            .ok_or(WorkloadError::BadPageSize(self.page_size))?;
        let mut spec = DatasetSpec::preset(self.dataset).at_scale(self.nodes);
        let (graph, features) = match self.custom {
            Some((graph, features)) => {
                spec.num_nodes = graph.num_nodes();
                spec.avg_degree = graph.avg_degree().max(f64::MIN_POSITIVE);
                spec.feature_dim = features.dim();
                (graph, features)
            }
            None => {
                let graph = {
                    let _p = simkit::profile::phase("workload/graph");
                    spec.build_graph(self.seed)
                };
                let features = {
                    let _p = simkit::profile::phase("workload/features");
                    spec.build_features(self.seed)
                };
                (graph, features)
            }
        };
        let num_nodes = graph.num_nodes();
        let dg = {
            let _p = simkit::profile::phase("workload/directgraph");
            DirectGraphBuilder::new(layout).build(&graph, &features)?
        };
        let model = self
            .model
            .unwrap_or_else(|| GnnModelConfig::paper_default(spec.feature_dim));
        let batches = {
            let _p = simkit::profile::phase("workload/batches");
            let mut stream = MinibatchStream::new(num_nodes, self.batch_size, self.seed ^ 0xBA7C);
            (0..self.batches).map(|_| stream.next_batch()).collect()
        };
        Ok(Workload {
            spec,
            graph,
            features,
            dg,
            model,
            batches,
            seed: self.seed,
            fingerprint,
        })
    }
}

/// A fully prepared, platform-independent workload.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: DatasetSpec,
    graph: CsrGraph,
    features: FeatureTable,
    dg: DirectGraph,
    model: GnnModelConfig,
    batches: Vec<Vec<NodeId>>,
    seed: u64,
    fingerprint: Option<String>,
}

impl Workload {
    /// Reassembles a workload from deserialized parts (the disk-cache
    /// load path). Callers are responsible for the parts being mutually
    /// consistent — the cache validates them against its checksum and
    /// fingerprint before getting here.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        spec: DatasetSpec,
        graph: CsrGraph,
        features: FeatureTable,
        dg: DirectGraph,
        model: GnnModelConfig,
        batches: Vec<Vec<NodeId>>,
        seed: u64,
        fingerprint: Option<String>,
    ) -> Self {
        Workload {
            spec,
            graph,
            features,
            dg,
            model,
            batches,
            seed,
            fingerprint,
        }
    }

    /// Starts building a workload.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder {
            dataset: Dataset::Amazon,
            nodes: 10_000,
            batch_size: 256,
            batches: 4,
            page_size: 4096,
            seed: 1,
            model: None,
            custom: None,
        }
    }

    /// The dataset spec this workload was synthesized from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The CSR graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The feature table.
    pub fn features(&self) -> &FeatureTable {
        &self.features
    }

    /// The DirectGraph image.
    pub fn directgraph(&self) -> &DirectGraph {
        &self.dg
    }

    /// Mutable access to the DirectGraph image, for reliability
    /// operations (scrub re-programs, wear-leveling reclamation) and
    /// fault-injection tests.
    pub fn directgraph_mut(&mut self) -> &mut DirectGraph {
        &mut self.dg
    }

    /// The GNN model configuration.
    pub fn model(&self) -> GnnModelConfig {
        self.model
    }

    /// The mini-batch target sets.
    pub fn batches(&self) -> &[Vec<NodeId>] {
        &self.batches
    }

    /// The synthesis seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The builder fingerprint this workload was prepared from, if it
    /// has one. Workloads built from a caller-supplied graph have no
    /// fingerprint — they carry no stable identity to key a cache on —
    /// and are excluded from both the workload disk cache and the
    /// cascade record/replay cache.
    pub fn fingerprint(&self) -> Option<&str> {
        self.fingerprint.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_prepare() {
        let w = Workload::builder()
            .nodes(500)
            .batch_size(8)
            .batches(2)
            .prepare()
            .unwrap();
        assert_eq!(w.graph().num_nodes(), 500);
        assert_eq!(w.batches().len(), 2);
        assert_eq!(w.batches()[0].len(), 8);
        assert_eq!(w.model().hops, 3);
        assert_eq!(w.spec().dataset, Dataset::Amazon);
    }

    #[test]
    fn bad_page_size_rejected() {
        let err = Workload::builder().page_size(1000).prepare().unwrap_err();
        assert_eq!(err, WorkloadError::BadPageSize(1000));
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn oversized_feature_propagates_build_error() {
        // PPI features (1000 B) fit 4 KB but not 2 KB pages when padded
        // with metadata? They do fit; force failure with a tiny page and
        // reddit's 1204 B features.
        let err = Workload::builder()
            .dataset(Dataset::Reddit)
            .nodes(100)
            .page_size(2048)
            .prepare();
        // Reddit primary fixed part is ~1.2 KB; it fits 2 KB, so this
        // actually succeeds — assert that instead, and force an error
        // via a custom oversized model... construction has no such
        // path, so just assert success for documentation value.
        assert!(err.is_ok());
    }

    #[test]
    fn custom_graph_workload() {
        use beacon_graph::io::read_edge_list;
        // A user-supplied graph loaded from an edge list.
        let mut text = String::new();
        for u in 0..40u32 {
            for d in 1..=4u32 {
                text.push_str(&format!("{} {}\n", u, (u + d) % 40));
            }
        }
        let graph = read_edge_list(text.as_bytes()).unwrap();
        let features = FeatureTable::synthetic(40, 16, 1);
        let w = Workload::builder()
            .custom_graph(graph, features)
            .batch_size(4)
            .batches(1)
            .prepare()
            .unwrap();
        assert_eq!(w.graph().num_nodes(), 40);
        assert_eq!(w.model().feature_dim, 16);
        // And it simulates end-to-end.
        let m = crate::Experiment::new(&w).run(crate::Platform::Bg2);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::builder()
            .nodes(300)
            .batch_size(4)
            .batches(1)
            .seed(9)
            .prepare()
            .unwrap();
        let b = Workload::builder()
            .nodes(300)
            .batch_size(4)
            .batches(1)
            .seed(9)
            .prepare()
            .unwrap();
        assert_eq!(a.batches(), b.batches());
        assert_eq!(a.directgraph().stats(), b.directgraph().stats());
    }
}
