//! Calibration probe: per-platform, per-resource busy times (not a
//! paper figure; used to sanity-check where each platform bottlenecks).
use beacongnn::{Dataset, Experiment, Platform, SsdConfig, Workload};

fn main() {
    let w = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(12_000)
        .batch_size(256)
        .batches(3)
        .seed(2024)
        .prepare()
        .unwrap();
    for (name, ssd) in [
        ("16x8", SsdConfig::paper_default()),
        (
            "32x16",
            SsdConfig::paper_default()
                .with_channels(32)
                .with_dies_per_channel(16),
        ),
    ] {
        let exp = Experiment::new(&w).ssd(ssd);
        {
            let p = Platform::Bg2;
            let m = exp.run(p);
            let s = m.stages;
            let prep_s = m.prep_time.as_secs_f64();
            println!("{name} {:>7}: prep {:.3}ms/batch  tput {:.0}/s  die busy {:.2}ms ({:.0}%)  chan {:.2}ms ({:.0}%)  dram {:.2}ms ({:.0}%)  compute {:.3}ms",
                m.platform, prep_s*1e3/3.0, m.throughput(),
                s.flash_read.as_secs_f64()*1e3, s.flash_read.as_secs_f64()/ (prep_s * m.total_dies as f64) * 100.0,
                s.channel.as_secs_f64()*1e3, s.channel.as_secs_f64()/(prep_s*m.total_channels as f64)*100.0,
                s.dram.as_secs_f64()*1e3, s.dram.as_secs_f64()/prep_s*100.0,
                m.compute_time.as_secs_f64()*1e3/3.0);
        }
    }
}
