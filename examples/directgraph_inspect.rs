//! DirectGraph anatomy: convert a graph, walk a node's sections, run a
//! die-level sampling cascade, and verify the §VI-E security checks.
//!
//! ```sh
//! cargo run --release --example directgraph_inspect
//! ```

use beacongnn::directgraph::{Section, Validator};
use beacongnn::flash::sampler::{DieSampler, GnnDieConfig, SampleCommand};
use beacongnn::report::percent;
use beacongnn::{Dataset, NodeId, Workload, WorkloadError};

fn main() -> Result<(), WorkloadError> {
    let workload = Workload::builder()
        .dataset(Dataset::Reddit) // high degree: exercises secondary sections
        .nodes(3_000)
        .batch_size(1)
        .batches(1)
        .seed(11)
        .prepare()?;
    let dg = workload.directgraph();

    println!(
        "Converted {} nodes / {} edges -> {} flash pages, inflation {}",
        workload.graph().num_nodes(),
        workload.graph().num_edges(),
        dg.stats().total_pages(),
        percent(dg.inflation(workload.features()).inflation_ratio()),
    );

    // Walk the highest-degree node's sections.
    let hub = workload
        .graph()
        .nodes()
        .max_by_key(|&v| workload.graph().degree(v))
        .expect("non-empty graph");
    let addr = dg.directory().primary_addr(hub).expect("hub in directory");
    let section = dg.image().parse_section(addr).expect("parses");
    if let Section::Primary(p) = &section {
        println!(
            "\nnode {hub}: degree {}, {} inline neighbors, {} secondary sections, {}-byte feature",
            p.total_neighbors,
            p.inline_count(),
            p.secondary_addrs.len(),
            p.feature.len(),
        );
        for (i, &sa) in p.secondary_addrs.iter().take(3).enumerate() {
            let s = dg.image().parse_section(sa).expect("secondary parses");
            if let Section::Secondary(s) = s {
                println!(
                    "  secondary {i} at {sa}: neighbors [{}..{})",
                    s.owner_start,
                    s.owner_start as usize + s.neighbors.len()
                );
            }
        }
    }

    // Run a 2-hop sampling cascade entirely through the die-sampler
    // model, like the SSD backend would.
    let cfg = GnnDieConfig {
        num_hops: 2,
        fanout: 3,
        feature_bytes: 400,
    };
    let mut sampler = DieSampler::new(cfg, 99);
    let mut frontier = vec![SampleCommand::root(addr, 0)];
    let mut visited = 0u64;
    while let Some(cmd) = frontier.pop() {
        let out = sampler
            .execute(&cmd, dg.image())
            .expect("image well-formed");
        if out.visited.is_some() {
            visited += 1;
        }
        frontier.extend(out.new_commands);
    }
    println!("\nsampling cascade from {hub}: visited {visited} nodes (expect <= 13 for 2x3)");

    // Firmware security validation (§VI-E).
    let validator = Validator::new(dg);
    validator.verify_image().expect("image addresses in bounds");
    validator.verify_target(hub, addr).expect("target valid");
    let bogus = NodeId::new(0);
    let err = validator.verify_target(bogus, addr).unwrap_err();
    println!("security check rejects a mismatched target as expected: {err}");
    Ok(())
}
