//! §VIII extensions in action: real-time GNN query latency and
//! computational-storage-array scale-out.
//!
//! ```sh
//! cargo run --release --example scaleout_query
//! ```

use beacongnn::platforms::{evaluate_array, measure_query_latency, ArrayConfig};
use beacongnn::report::{percent, ratio, Table};
use beacongnn::{Dataset, NodeId, Platform, SsdConfig, Workload, WorkloadError};

fn main() -> Result<(), WorkloadError> {
    let workload = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(10_000)
        .batch_size(64)
        .batches(2)
        .seed(5)
        .prepare()?;

    // --- GNN queries: single-target inference latency. ---
    println!("Single-target GNN query latency (device idle, no pipelining):\n");
    let queries: Vec<Vec<NodeId>> = (0..5).map(|i| vec![NodeId::new(i * 17)]).collect();
    let mut t = Table::new(&["platform", "mean", "max"]);
    for p in [Platform::Cc, Platform::Bg1, Platform::Bg2] {
        let lat = measure_query_latency(
            p,
            SsdConfig::paper_default(),
            workload.model(),
            workload.directgraph(),
            &queries,
            9,
        );
        t.row_owned(vec![
            p.to_string(),
            format!("{}", lat.mean),
            format!("{}", lat.max),
        ]);
    }
    println!("{}", t.render());

    // --- Storage array: scale BG-2 out over P2P links. ---
    println!("\nBeaconGNN array scale-out (BG-2, PCIe P2P):\n");
    let mut t = Table::new(&["SSDs", "vs 1 SSD", "efficiency", "cross-partition traffic"]);
    let mut single = None;
    for n in [1usize, 2, 4, 8] {
        let s = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(n),
            SsdConfig::paper_default(),
            workload.model(),
            workload.directgraph(),
            workload.batches(),
            9,
        );
        let base = *single.get_or_insert(s.array_throughput);
        t.row_owned(vec![
            n.to_string(),
            ratio(s.array_throughput / base),
            percent(s.efficiency()),
            percent(s.cross_fraction),
        ]);
    }
    println!("{}", t.render());
    println!("A thin fabric caps scaling — try ArrayConfig {{ p2p_bandwidth: 2e6, .. }}.");
    Ok(())
}
