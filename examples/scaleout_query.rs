//! §VIII extensions in action: real-time GNN query latency and a
//! cross-check of the two array scale-out paths — the analytic solver
//! against the simulated device-lane array.
//!
//! ```sh
//! cargo run --release --example scaleout_query
//! ```
//!
//! The full scale-out figure (1–16 devices × partition strategies ×
//! fabrics) lives in the harness: `cargo run --release -p beacon-bench
//! --bin experiments scaleout`.

use beacongnn::platforms::{evaluate_array_partitioned, measure_query_latency};
use beacongnn::report::{percent, Table};
use beacongnn::{
    ArrayConfig, Dataset, Experiment, NodeId, Partition, Platform, SsdConfig, Workload,
    WorkloadError,
};

fn main() -> Result<(), WorkloadError> {
    let workload = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(10_000)
        .batch_size(64)
        .batches(2)
        .seed(5)
        .prepare()?;

    // --- GNN queries: single-target inference latency. ---
    println!("Single-target GNN query latency (device idle, no pipelining):\n");
    let queries: Vec<Vec<NodeId>> = (0..5).map(|i| vec![NodeId::new(i * 17)]).collect();
    let mut t = Table::new(&["platform", "mean", "max"]);
    for p in [Platform::Cc, Platform::Bg1, Platform::Bg2] {
        let lat = measure_query_latency(
            p,
            SsdConfig::paper_default(),
            workload.model(),
            workload.directgraph(),
            &queries,
            9,
        );
        t.row_owned(vec![
            p.to_string(),
            format!("{}", lat.mean),
            format!("{}", lat.max),
        ]);
    }
    println!("{}", t.render());

    // --- Storage array: analytic bound vs simulated device lanes. ---
    // The analytic solver prices compute and fabric as throughput
    // limits; the simulated array replays the recorded cascade through
    // per-device lanes and an explicit fabric. Both should agree on the
    // shape: near-linear scaling while the fabric has headroom.
    println!("\nBG-2 array scale-out, analytic vs simulated (PCIe P2P, hash partition):\n");
    let exp = Experiment::new(&workload);
    let cascade = exp
        .array_engine(Platform::Bg2, ArrayConfig::pcie_p2p(1))
        .record(workload.batches());
    let mut t = Table::new(&[
        "SSDs",
        "analytic efficiency",
        "simulated efficiency",
        "cross-device traffic",
    ]);
    for n in [1usize, 2, 4, 8] {
        let part = Partition::hash(workload.graph(), n as u32);
        let analytic = evaluate_array_partitioned(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(n),
            exp.config(),
            workload.model(),
            workload.directgraph(),
            workload.batches(),
            workload.seed(),
            &part,
        );
        let simulated = exp
            .array_engine(Platform::Bg2, ArrayConfig::pcie_p2p(n))
            .run_recorded(&cascade, &part);
        t.row_owned(vec![
            n.to_string(),
            percent(analytic.efficiency()),
            percent(simulated.efficiency()),
            format!("{:.2} MB", simulated.fabric_bytes() as f64 / 1e6),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The simulated path also prices queueing on the fabric links; see\n\
         `experiments scaleout` for the partition-strategy and fabric sweeps."
    );
    Ok(())
}
