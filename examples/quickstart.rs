//! Quickstart: run the CPU-centric baseline and BeaconGNN-2.0 on an
//! amazon-like workload and compare throughput, latency and energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use beacongnn::energy::EnergyCosts;
use beacongnn::report::{percent, ratio, throughput, Table};
use beacongnn::{Dataset, Experiment, Platform, Workload, WorkloadError};

fn main() -> Result<(), WorkloadError> {
    // Prepare the workload once: synthesize an amazon-like graph
    // (power-law, avg degree 168, 200-dim FP16 features), convert it to
    // DirectGraph, and draw mini-batch targets.
    let workload = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(20_000)
        .batch_size(128)
        .batches(4)
        .seed(42)
        .prepare()?;

    let dg = workload.directgraph();
    println!(
        "DirectGraph: {} pages ({} primary / {} secondary), inflation {}",
        dg.stats().total_pages(),
        dg.stats().primary_pages,
        dg.stats().secondary_pages,
        percent(dg.inflation(workload.features()).inflation_ratio()),
    );
    println!();

    let exp = Experiment::new(&workload);
    let costs = EnergyCosts::default_costs();

    let mut table = Table::new(&[
        "platform",
        "throughput",
        "vs CC",
        "prep",
        "compute",
        "die util",
        "energy/target",
    ]);
    let cc = exp.run(Platform::Cc);
    for p in [Platform::Cc, Platform::Bg1, Platform::Bg2] {
        let m = exp.run(p);
        let e = m.energy.breakdown(&costs);
        table.row_owned(vec![
            m.platform.to_string(),
            throughput(m.throughput()),
            ratio(m.throughput() / cc.throughput()),
            format!("{}", m.prep_time),
            format!("{}", m.compute_time),
            percent(m.die_utilization()),
            format!("{:.2} uJ", e.total() / m.targets as f64 * 1e6),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
