//! Ablation study: walk the paper's BG-1 → BG-2 chain and show which
//! optimization buys what (paper §VII-B, Fig 14's BG-X bars).
//!
//! ```sh
//! cargo run --release --example ablation_study
//! ```

use beacongnn::report::{percent, ratio, Table};
use beacongnn::{Dataset, Experiment, Platform, Workload, WorkloadError};

fn main() -> Result<(), WorkloadError> {
    let workload = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(20_000)
        .batch_size(256)
        .batches(3)
        .seed(7)
        .prepare()?;
    let exp = Experiment::new(&workload);

    println!(
        "Ablation chain on {} ({} targets/batch):\n",
        workload.spec().dataset,
        256
    );

    let mut table = Table::new(&[
        "platform",
        "adds",
        "vs CC",
        "vs prev",
        "die util",
        "chan util",
        "cmd wait-before",
    ]);
    let adds = [
        ("BG-1", "full-stage offload (GList+SmartSage)"),
        ("BG-DG", "+ DirectGraph (out-of-order sampling)"),
        ("BG-SP", "+ die-level samplers (useful-bytes xfer)"),
        ("BG-DGSP", "+ both"),
        ("BG-2", "+ hardware command routing"),
    ];

    let cc = exp.run(Platform::Cc).throughput();
    let mut prev: Option<f64> = None;
    for (&p, (_, what)) in Platform::BG_CHAIN.iter().zip(adds) {
        let m = exp.run(p);
        let t = m.throughput();
        let (wait_before, _, _) = m.cmd_breakdown.fractions();
        table.row_owned(vec![
            m.platform.to_string(),
            what.to_string(),
            ratio(t / cc),
            prev.map(|pv| ratio(t / pv)).unwrap_or_else(|| "-".into()),
            percent(m.die_utilization()),
            percent(m.channel_utilization()),
            percent(wait_before),
        ]);
        prev = Some(t);
    }
    println!("{}", table.render());
    println!(
        "Reading: die-level sampling (BG-SP) should deliver the largest step,\n\
         DirectGraph should matter little alone but compound with SP, and the\n\
         hardware router should add a final ~1.4x by taking firmware off the path."
    );
    Ok(())
}
