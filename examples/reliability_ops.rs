//! Reliability operations (paper §VI-F): scrubbing DirectGraph blocks
//! and wear-leveling reclamation with embedded-address rewriting.
//!
//! ```sh
//! cargo run --release --example reliability_ops
//! ```

use beacongnn::flash::{FlashGeometry, ReliabilityModel};
use beacongnn::ssd::reliability::{reclaim_if_needed, ReclamationOutcome, Scrubber};
use beacongnn::ssd::Ftl;
use beacongnn::{Dataset, NodeId, Workload, WorkloadError};
use simkit::Duration;

fn main() -> Result<(), WorkloadError> {
    let mut workload = Workload::builder()
        .dataset(Dataset::Ogbn)
        .nodes(5_000)
        .batch_size(1)
        .batches(1)
        .seed(3)
        .prepare()?;

    // --- Scrubbing: aged flash gets corrected and re-programmed. ---
    let aged = ReliabilityModel::z_nand(4096, 1).with_rber(2e-5);
    let mut scrubber = Scrubber::new(aged, 256);
    for month in 1..=3 {
        let report = scrubber.scrub_pass(workload.directgraph(), Duration::from_secs(30 * 86_400));
        println!(
            "scrub pass {month}: scanned {} pages, corrected {}, re-programmed {} blocks, \
             uncorrectable {}",
            report.pages_scanned,
            report.pages_corrected,
            report.blocks_reprogrammed,
            report.pages_uncorrectable,
        );
        assert_eq!(
            report.pages_uncorrectable, 0,
            "scrubbing must outpace decay"
        );
    }

    // --- Wear-leveling reclamation. ---
    let geo = FlashGeometry {
        channels: 4,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_size: 4096,
    };
    let mut ftl = Ftl::new(&geo, 0.1);
    let pages = workload.directgraph().image().pages_written();
    let mut blocks = ftl.reserve_blocks(pages.div_ceil(64)).expect("reserve");
    println!("\nreserved {} blocks for DirectGraph", blocks.len());

    // Regular I/O churns the rest of the device.
    let logical = ftl.logical_pages() * 6 / 10;
    for _ in 0..8 {
        for lpa in 0..logical {
            ftl.write(lpa).expect("regular write");
        }
    }
    println!("after churn: wear gap = {:.1} P/E cycles", ftl.wear_gap());

    let before = workload
        .directgraph()
        .directory()
        .primary_addr(NodeId::new(0))
        .expect("node 0");
    let dg = workload_dg_mut(&mut workload);
    match reclaim_if_needed(dg, &mut ftl, &mut blocks, 0.5, 1 << 16, 64).expect("reclaim") {
        ReclamationOutcome::Migrated {
            pages_moved,
            blocks_released,
        } => {
            println!("reclamation migrated {pages_moved} pages, released {blocks_released} blocks");
        }
        ReclamationOutcome::NotNeeded { wear_gap } => {
            println!("no reclamation needed (gap {wear_gap:.2})");
        }
    }
    let after = workload
        .directgraph()
        .directory()
        .primary_addr(NodeId::new(0))
        .expect("node 0 still resolvable");
    println!("node 0 primary section moved: {before} -> {after}");
    assert_ne!(before, after);
    // The image still parses end-to-end after migration.
    workload
        .directgraph()
        .image()
        .parse_section(after)
        .expect("migrated image parses");
    println!("migrated image verified.");
    Ok(())
}

/// `Workload` exposes the DirectGraph immutably; reliability operations
/// need mutable access, so this example reaches in via a rebuild-free
/// helper on the workload type.
fn workload_dg_mut(w: &mut Workload) -> &mut beacongnn::directgraph::DirectGraph {
    w.directgraph_mut()
}
