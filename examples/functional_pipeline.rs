//! The functional story end-to-end: DirectGraph conversion → in-storage
//! sampling cascade → subgraph reconstruction from the visit stream →
//! GNN forward pass — every piece running on real data, no timing.
//!
//! ```sh
//! cargo run --release --example functional_pipeline
//! ```

use beacon_gnn::subgraph::{Subgraph, VisitRecord};
use beacon_gnn::{GnnForward, HostSampler};
use beacongnn::flash::sampler::{DieSampler, GnnDieConfig, SampleCommand};
use beacongnn::{Dataset, NodeId, Workload, WorkloadError};

fn main() -> Result<(), WorkloadError> {
    let workload = Workload::builder()
        .dataset(Dataset::Ogbn)
        .nodes(5_000)
        .batch_size(8)
        .batches(1)
        .seed(13)
        .prepare()?;
    let dg = workload.directgraph();
    let model = workload.model();

    // --- In-storage path: die-sampler cascade + stream reconstruction.
    let cfg = GnnDieConfig {
        num_hops: model.hops,
        fanout: model.fanout,
        feature_bytes: model.feature_bytes() as u16,
    };
    let mut sampler = DieSampler::new(cfg, 99);
    let forward = GnnForward::new(model, 99);

    println!("target    visited  depth  ||embedding||");
    for &target in &workload.batches()[0] {
        let addr = dg.directory().primary_addr(target).expect("in directory");
        let mut records = Vec::new();
        let mut frontier = vec![SampleCommand::root(addr, 0)];
        while let Some(cmd) = frontier.pop() {
            let out = sampler
                .execute(&cmd, dg.image())
                .expect("well-formed image");
            if let Some(node) = out.visited {
                records.push(VisitRecord {
                    node,
                    hop: cmd.hop,
                    parent: (cmd.parent != SampleCommand::NO_PARENT)
                        .then(|| NodeId::new(cmd.parent)),
                });
            }
            frontier.extend(out.new_commands);
        }
        // The SSD streams visits out of order; the host (or firmware
        // GNN engine) reconstructs the subgraph tree.
        let sg = Subgraph::reconstruct(&records).expect("stream reconstructs");
        let embedding = forward.forward(&sg, workload.features());
        let norm: f32 = embedding.iter().map(|v| v * v).sum::<f32>().sqrt();
        println!(
            "{:<9} {:<8} {:<6} {:.4}",
            target.to_string(),
            sg.len(),
            sg.depth(),
            norm
        );
    }

    // --- Cross-check: the host reference sampler visits the same
    // number of nodes per target (identical sampling semantics).
    let mut host = HostSampler::new(model, 5);
    let host_sg = host.sample_subgraph(workload.graph(), workload.batches()[0][0]);
    println!(
        "\nhost reference sampler: {} nodes for the same model (expect {})",
        host_sg.len(),
        model.subgraph_nodes()
    );
    Ok(())
}
